"""Supervised query execution for the checking service.

A native-code crash — a segfault deep in scipy, an OOM kill while a
dense propagator cell is assembled — takes out the *whole* serving
process and every warm cache entry with it.  This module confines that
blast radius to one query: with ``ServerConfig(isolate="process")`` the
service runs each computation in a **forked worker process** and the
parent only ever touches the worker through a pipe, so a dead worker
answers its own query with exit code 5 (and a :class:`WorkerCrash`
record in the diagnostic trace) while the server, its warm entries and
every concurrent request carry on.

The design reuses the three patterns that made
:func:`repro.parallel.run_batches` fault-tolerant:

- **fork inheritance, not pickling** — the query closure captures the
  warm entry state (compiled generators, evaluation contexts), none of
  which can cross a pickle boundary.  Each supervised query forks a
  fresh worker, which inherits the parent's memory snapshot — including
  every warm cache — by copy-on-write; only the *result* (a plain
  response core plus the picklable transient-cache export) crosses back
  through the pipe, so the parent's caches stay warm even though the
  work happened elsewhere.
- **crash detection with restart under capped backoff** — a worker that
  dies without delivering (or outlives its wall-clock allowance and is
  reaped) is recorded as a :class:`WorkerCrash`; the *next* supervised
  query forks a fresh worker ("restart"), but only after a
  capped-exponential cool-down window (:func:`repro.resilience.capped_backoff`)
  during which queries run in-process — the supervisor never sleeps in
  the serving path, it degrades instead.
- **in-process fallback** — after ``crash_loop_threshold`` consecutive
  crashes the crash-loop breaker trips: isolation is suspended for a
  full ``backoff_cap`` window and queries run in-process (exactly the
  ``workers=1`` path), trading isolation for availability the same way
  the parallel executor finishes surviving batches in-process when its
  pool keeps breaking.

``isolate="thread"`` is the portable half-measure for platforms without
``fork``: the query runs on a worker thread with the same wall-clock
allowance, so a *stalled* computation is detected and answered with
exit code 5 (the thread itself cannot be killed and is abandoned), but
a native crash still takes the process down.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.exceptions import (
    CheckingError,
    ModelError,
    ReproError,
    WorkerCrashError,
)
from repro.parallel import fork_available
from repro.resilience import capped_backoff

#: Recognized isolation modes (``ServerConfig.isolate``).
ISOLATION_MODES = ("none", "thread", "process")

#: Seconds between liveness polls of a running worker.
_POLL_INTERVAL = 0.05

#: How long the parent waits for a worker that already delivered its
#: result to exit on its own before terminating it.
_REAP_GRACE = 5.0


@dataclass
class WorkerCrash:
    """One supervised-worker death, recorded on the supervisor and noted
    into the diagnostic trace of the query it killed."""

    pid: Optional[int]
    exitcode: Optional[int]
    elapsed: float
    reason: str
    mode: str = "process"
    consecutive: int = 1

    def describe(self) -> str:
        signal_part = ""
        if self.exitcode is not None and self.exitcode < 0:
            try:
                signal_part = f" ({signal.Signals(-self.exitcode).name})"
            except ValueError:
                signal_part = ""
        return (
            f"WorkerCrash: {self.mode} worker pid={self.pid} "
            f"exitcode={self.exitcode}{signal_part} after "
            f"{self.elapsed:.3f}s — {self.reason} "
            f"[consecutive={self.consecutive}]"
        )


def _worker_main(conn, fn: Callable[[], Any]) -> None:
    """Body of a forked query worker: run ``fn``, deliver, exit.

    Library errors travel as themselves (their ``__reduce__`` fixes keep
    the pickle boundary lossless); anything else is wrapped so the
    parent never has to unpickle arbitrary third-party exception state.
    An undeliverable *result* (unpicklable) is downgraded to an error,
    not a crash — the computation succeeded, only the transfer failed.
    """
    try:
        try:
            payload: Tuple[str, Any] = ("ok", fn())
        except ReproError as exc:
            payload = ("error", exc)
        except BaseException as exc:
            payload = (
                "error",
                CheckingError(
                    f"worker raised {type(exc).__name__}: {exc}"
                ),
            )
        try:
            conn.send(payload)
        except Exception as exc:
            conn.send(
                (
                    "error",
                    CheckingError(
                        f"worker result could not be transferred: {exc}"
                    ),
                )
            )
        conn.close()
    except Exception:
        # The pipe itself is gone; exit non-zero so the parent records a
        # crash instead of waiting out the full allowance.
        os._exit(1)


class QuerySupervisor:
    """Runs query closures under the configured isolation mode.

    Parameters
    ----------
    mode:
        ``"none"`` (run inline), ``"thread"`` (worker thread with a
        wall-clock allowance) or ``"process"`` (forked worker; falls
        back to inline where ``fork`` is unavailable).
    worker_grace:
        Extra wall-clock seconds a worker is allowed beyond the query's
        own deadline before the parent reaps it — covers fork/pickle
        overhead and the budget's own (cooperative, hence slightly
        late) enforcement inside the worker.
    default_timeout:
        Wall-clock allowance for queries that carry no deadline;
        ``None`` leaves them unbounded.
    crash_loop_threshold:
        Consecutive crashes after which the breaker trips and isolation
        is suspended for a full ``backoff_cap`` window.
    backoff_base / backoff_cap:
        The capped-exponential schedule sizing the in-process cool-down
        window after each crash (1 crash → ``base``, then doubling up
        to ``cap``).
    stats:
        Optional :class:`~repro.instrumentation.EvalStats`; receives the
        ``service_supervised`` / ``service_worker_crashes`` /
        ``service_worker_restarts`` / ``service_crash_breaker_trips``
        counters.
    clock / sleep:
        Injectable time sources for deterministic tests.

    Thread safety: :meth:`run` may be called from many service threads
    at once — each call owns its private worker; only the crash
    bookkeeping is shared and lock-guarded.
    """

    def __init__(
        self,
        mode: str = "none",
        *,
        worker_grace: float = 5.0,
        default_timeout: Optional[float] = None,
        crash_loop_threshold: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        stats=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if mode not in ISOLATION_MODES:
            raise ModelError(
                f"isolate must be one of {list(ISOLATION_MODES)}, "
                f"got {mode!r}"
            )
        if worker_grace <= 0:
            raise ModelError(
                f"worker_grace must be positive, got {worker_grace}"
            )
        if default_timeout is not None and default_timeout <= 0:
            raise ModelError(
                f"default_timeout must be positive, got {default_timeout}"
            )
        if crash_loop_threshold < 1:
            raise ModelError(
                f"crash_loop_threshold must be >= 1, "
                f"got {crash_loop_threshold}"
            )
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise ModelError(
                f"need 0 < backoff_base <= backoff_cap, got "
                f"base={backoff_base}, cap={backoff_cap}"
            )
        self.mode = mode
        self.worker_grace = float(worker_grace)
        self.default_timeout = default_timeout
        self.crash_loop_threshold = int(crash_loop_threshold)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.stats = stats
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive_crashes = 0
        self._degraded_until: Optional[float] = None
        #: Recent crash records, newest last (bounded).
        self.crashes: "deque[WorkerCrash]" = deque(maxlen=64)
        #: pids of currently-running workers (chaos tests kill these).
        self._active_pids: set = set()

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    def active_pids(self) -> List[int]:
        """pids of workers currently executing a query."""
        with self._lock:
            return sorted(self._active_pids)

    def degraded(self) -> bool:
        """Whether isolation is currently suspended (cool-down/breaker)."""
        with self._lock:
            return self._degraded_now()

    def _degraded_now(self) -> bool:
        """Caller holds the lock."""
        if self._degraded_until is None:
            return False
        if self._clock() < self._degraded_until:
            return True
        # Window elapsed: the next supervised query probes a worker
        # again (half-open breaker).
        self._degraded_until = None
        return False

    def snapshot(self) -> dict:
        """Plain-data view for ``/stats``."""
        with self._lock:
            return {
                "mode": self.mode,
                "degraded": self._degraded_now(),
                "consecutive_crashes": self._consecutive_crashes,
                "active_workers": len(self._active_pids),
                "recent_crashes": [c.describe() for c in self.crashes],
            }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        fn: Callable[[], Any],
        *,
        deadline: Optional[float] = None,
        trace=None,
    ) -> Tuple[Any, bool]:
        """Execute ``fn`` under the configured isolation.

        Returns ``(result, isolated)`` — ``isolated`` is ``True`` only
        when ``fn`` actually ran in a worker process, which is what
        tells the caller whether worker-side cache state must be
        shipped back.  Library exceptions raised by ``fn`` propagate
        unchanged regardless of where it ran; a dead or reaped worker
        raises :class:`~repro.exceptions.WorkerCrashError` instead.
        """
        timeout = (
            self.default_timeout
            if deadline is None
            else float(deadline) + self.worker_grace
        )
        if self.mode == "thread":
            return self._run_in_thread(fn, timeout, trace), False
        if self.mode != "process" or not fork_available():
            return fn(), False
        with self._lock:
            if self._degraded_now():
                restarting = False
                isolate = False
            else:
                restarting = self._consecutive_crashes > 0
                isolate = True
        if not isolate:
            return fn(), False
        if self.stats is not None:
            self.stats.service_supervised += 1
            if restarting:
                self.stats.service_worker_restarts += 1
        return self._run_in_process(fn, timeout, trace), True

    # -- thread mode ---------------------------------------------------

    def _run_in_thread(
        self, fn: Callable[[], Any], timeout: Optional[float], trace
    ) -> Any:
        """Worker-thread execution: stall detection without ``fork``."""
        if self.stats is not None:
            self.stats.service_supervised += 1
        box: dict = {}

        def target() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # delivered to the caller below
                box["error"] = exc

        start = self._clock()
        worker = threading.Thread(
            target=target, name="mfcsl-query-worker", daemon=True
        )
        worker.start()
        worker.join(timeout)
        if worker.is_alive():
            # The thread cannot be killed; it is abandoned (it still
            # holds no service locks — the entry lock belongs to the
            # caller) and the query answered as a crash.
            crash = self._record_crash(
                pid=None,
                exitcode=None,
                elapsed=self._clock() - start,
                reason=f"query thread still running after {timeout:g}s",
                mode="thread",
                trace=trace,
            )
            raise WorkerCrashError(crash.describe())
        self._record_success()
        if "error" in box:
            raise box["error"]
        return box.get("value")

    # -- process mode --------------------------------------------------

    def _run_in_process(
        self, fn: Callable[[], Any], timeout: Optional[float], trace
    ) -> Any:
        """Forked-worker execution with crash detection and reaping."""
        context = multiprocessing.get_context("fork")
        parent_conn, child_conn = context.Pipe(duplex=False)
        worker = context.Process(
            target=_worker_main, args=(child_conn, fn), daemon=True
        )
        start = self._clock()
        worker.start()
        child_conn.close()
        with self._lock:
            self._active_pids.add(worker.pid)
        try:
            message, timed_out = self._await_worker(
                worker, parent_conn, timeout, start
            )
        finally:
            with self._lock:
                self._active_pids.discard(worker.pid)
            parent_conn.close()
            self._reap(worker)
        if message is None:
            elapsed = self._clock() - start
            if timed_out:
                reason = (
                    f"worker exceeded its {timeout:g}s wall-clock "
                    f"allowance and was killed"
                )
            else:
                reason = "worker died before delivering a result"
            crash = self._record_crash(
                pid=worker.pid,
                exitcode=worker.exitcode,
                elapsed=elapsed,
                reason=reason,
                mode="process",
                trace=trace,
            )
            raise WorkerCrashError(
                crash.describe(), pid=worker.pid, exitcode=worker.exitcode
            )
        self._record_success()
        kind, value = message
        if kind == "error":
            raise value
        return value

    def _await_worker(
        self, worker, conn, timeout: Optional[float], start: float
    ):
        """Poll the result pipe until delivery, death or timeout.

        Returns ``(message, timed_out)``: the ``(kind, value)`` message
        (or ``None`` for a crash) and whether the crash was the parent
        reaping an over-allowance worker rather than the worker dying
        on its own.
        """
        end = None if timeout is None else start + timeout
        while True:
            try:
                if conn.poll(_POLL_INTERVAL):
                    return conn.recv(), False
            except (EOFError, OSError):
                return None, False  # pipe torn down mid-write: worker died
            if not worker.is_alive():
                # Lost the race between delivery and exit? One last
                # non-blocking probe before declaring a crash.
                try:
                    if conn.poll(0):
                        return conn.recv(), False
                except (EOFError, OSError):
                    pass
                return None, False
            if end is not None and self._clock() >= end:
                worker.kill()
                worker.join(_REAP_GRACE)
                return None, True

    @staticmethod
    def _reap(worker) -> None:
        worker.join(_REAP_GRACE)
        if worker.is_alive():  # pragma: no cover - defensive
            worker.kill()
            worker.join(_REAP_GRACE)

    # ------------------------------------------------------------------
    # Crash bookkeeping
    # ------------------------------------------------------------------

    def _record_success(self) -> None:
        with self._lock:
            self._consecutive_crashes = 0

    def _record_crash(
        self,
        *,
        pid: Optional[int],
        exitcode: Optional[int],
        elapsed: float,
        reason: str,
        mode: str,
        trace,
    ) -> WorkerCrash:
        with self._lock:
            self._consecutive_crashes += 1
            consecutive = self._consecutive_crashes
            tripped = consecutive >= self.crash_loop_threshold
            # Restart under capped backoff: queries inside the window
            # run in-process instead of forking into a crash loop; a
            # tripped breaker opens the full cap at once.
            window = (
                self.backoff_cap
                if tripped
                else capped_backoff(
                    consecutive - 1, self.backoff_base, self.backoff_cap
                )
            )
            self._degraded_until = self._clock() + window
            crash = WorkerCrash(
                pid=pid,
                exitcode=exitcode,
                elapsed=float(elapsed),
                reason=reason,
                mode=mode,
                consecutive=consecutive,
            )
            self.crashes.append(crash)
        if self.stats is not None:
            self.stats.service_worker_crashes += 1
            if tripped:
                self.stats.service_crash_breaker_trips += 1
        if trace is not None:
            try:
                trace.note(crash.describe())
                if tripped:
                    trace.note(
                        f"crash-loop breaker tripped after {consecutive} "
                        f"consecutive crashes; executing in-process for "
                        f"{self.backoff_cap:g}s"
                    )
            except Exception:  # pragma: no cover - trace is best-effort
                pass
        return crash
