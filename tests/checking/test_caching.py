"""Solve-level caching in :class:`EvaluationContext` — correctness first.

Caching must be invisible to the numerics: cached Π matrices are
identical to uncached solves, derived contexts only share state that is
sound to share, and the instrumentation counters actually count.
"""

import numpy as np
import pytest

from repro.checking.context import EvaluationContext
from repro.checking.global_ import MFModelChecker
from repro.checking.transform import absorbing_generator_function
from repro.ctmc.inhomogeneous import solve_forward_kolmogorov
from repro.instrumentation import EvalStats
from repro.meanfield.ode import ShiftedTrajectory
from repro.models.diurnal import diurnal_virus_model

INFECTED = frozenset({1, 2})


class TestGeneratorMemo:
    def test_repeated_times_return_cached_array(self, ctx1):
        q_of_t = ctx1.generator_function()
        q1 = q_of_t(1.25)
        q2 = q_of_t(1.25)
        assert q2 is q1  # memoized, not re-assembled
        assert ctx1.stats.generator_cache_hits == 1
        assert ctx1.stats.generator_cache_misses == 1

    def test_memo_matches_direct_assembly(self, ctx1, virus1):
        q_of_t = ctx1.generator_function()
        for t in (0.0, 0.5, 2.0, 3.75):
            direct = virus1.local.generator(ctx1.occupancy(t), t)
            np.testing.assert_allclose(q_of_t(t), direct, rtol=0.0, atol=1e-12)

    def test_clear_caches_forces_reassembly(self, ctx1):
        q_of_t = ctx1.generator_function()
        q1 = q_of_t(0.5)
        ctx1.clear_caches()
        q2 = q_of_t(0.5)
        assert q2 is not q1
        np.testing.assert_array_equal(q1, q2)


class TestTransientCache:
    def test_cached_matrix_identical_to_uncached_solve(self, ctx1):
        q_abs = absorbing_generator_function(
            ctx1.generator_function(), INFECTED
        )
        sig = ("absorbing", INFECTED)
        pi = ctx1.transient_matrix(sig, q_abs, 0.0, 1.0)
        again = ctx1.transient_matrix(sig, q_abs, 0.0, 1.0)
        assert again is pi
        assert ctx1.stats.transient_cache_hits == 1
        # An uncached solve of the same problem (deterministic RK45 over
        # the memoized generator) reproduces the cached matrix exactly.
        fresh = solve_forward_kolmogorov(
            q_abs, 0.0, 1.0, rtol=ctx1.options.ode_rtol, atol=ctx1.options.ode_atol
        )
        np.testing.assert_array_equal(pi, fresh)

    def test_distinct_windows_and_tolerances_miss(self, ctx1):
        q_abs = absorbing_generator_function(
            ctx1.generator_function(), INFECTED
        )
        sig = ("absorbing", INFECTED)
        ctx1.transient_matrix(sig, q_abs, 0.0, 1.0)
        ctx1.transient_matrix(sig, q_abs, 0.0, 2.0)
        ctx1.transient_matrix(sig, q_abs, 1.0, 1.0)
        ctx1.transient_matrix(sig, q_abs, 0.0, 1.0, rtol=1e-6, atol=1e-9)
        assert ctx1.stats.transient_cache_hits == 0
        assert ctx1.stats.transient_cache_misses == 4

    def test_residual_tol_change_misses_cache(self, virus1, m_example1):
        """Regression: the transient cache key must include the solver
        tolerances in force — a matrix accepted under a loose
        ``residual_tol`` must not be served after the user tightens it."""
        ctx = EvaluationContext(virus1, m_example1)
        q_abs = absorbing_generator_function(
            ctx.generator_function(), INFECTED
        )
        sig = ("absorbing", INFECTED)
        ctx.transient_matrix(sig, q_abs, 0.0, 1.0)
        ctx.options = ctx.options.with_(residual_tol=1e-9)
        ctx.transient_matrix(sig, q_abs, 0.0, 1.0)
        assert ctx.stats.transient_cache_hits == 0
        assert ctx.stats.transient_cache_misses == 2
        # Restoring the original tolerance hits the first entry again.
        ctx.options = ctx.options.with_(residual_tol=1e-6)
        ctx.transient_matrix(sig, q_abs, 0.0, 1.0)
        assert ctx.stats.transient_cache_hits == 1

    def test_fast_key_path_shares_the_cache_with_explicit_args(
        self, virus1, m_example1
    ):
        """The hoisted-key fast path (no per-call overrides) must build
        the *same* cache key as an explicit call passing the options'
        own tolerances — one solve, served to both spellings."""
        ctx = EvaluationContext(virus1, m_example1)
        q_abs = absorbing_generator_function(
            ctx.generator_function(), INFECTED
        )
        sig = ("absorbing", INFECTED)
        fast = ctx.transient_matrix(sig, q_abs, 0.0, 1.0)
        assert ctx.stats.transient_fast_keys == 1
        explicit = ctx.transient_matrix(
            sig,
            q_abs,
            0.0,
            1.0,
            rtol=ctx.options.ode_rtol,
            atol=ctx.options.ode_atol,
            method=ctx.options.transient_method,
        )
        assert explicit is fast  # same cache entry, not a re-solve
        assert ctx.stats.transient_cache_hits == 1
        assert ctx.stats.transient_cache_misses == 1
        # The explicit spelling bypassed the hoisted tail.
        assert ctx.stats.transient_fast_keys == 1

    def test_fast_key_tail_tracks_option_updates(self, virus1, m_example1):
        ctx = EvaluationContext(virus1, m_example1)
        q_abs = absorbing_generator_function(
            ctx.generator_function(), INFECTED
        )
        sig = ("absorbing", INFECTED)
        ctx.transient_matrix(sig, q_abs, 0.0, 1.0)
        # Changing an option re-hoists the key tail: the fast path must
        # miss (new tolerances) instead of serving the stale matrix.
        ctx.options = ctx.options.with_(ode_rtol=1e-6)
        ctx.transient_matrix(sig, q_abs, 0.0, 1.0)
        assert ctx.stats.transient_fast_keys == 2
        assert ctx.stats.transient_cache_hits == 0
        assert ctx.stats.transient_cache_misses == 2

    def test_method_is_part_of_the_key(self, virus1, m_example1):
        """ODE and propagator backends may differ by up to their
        respective tolerances — one must never answer for the other."""
        ctx = EvaluationContext(virus1, m_example1)
        q_abs = absorbing_generator_function(
            ctx.generator_function(), INFECTED
        )
        sig = ("absorbing", INFECTED)
        via_ode = ctx.transient_matrix(sig, q_abs, 0.0, 1.0, method="ode")
        via_cells = ctx.transient_matrix(
            sig, q_abs, 0.0, 1.0, method="propagator"
        )
        assert ctx.stats.transient_cache_hits == 0
        assert ctx.stats.transient_cache_misses == 2
        # Both backends still agree numerically, of course.
        np.testing.assert_allclose(via_ode, via_cells, atol=1e-6)

    def test_formula_result_unchanged_by_warm_cache(self, virus1, m_example1):
        """Checking the same formula twice on one context gives the exact
        same verdict with the second run served largely from cache."""
        checker = MFModelChecker(virus1)
        ctx = checker.context(m_example1)
        formula = "EP[<0.3](not_infected U[0,1] infected)"
        first = checker.check(formula, m_example1, ctx=ctx)
        misses_after_first = ctx.stats.transient_cache_misses
        second = checker.check(formula, m_example1, ctx=ctx)
        assert second == first
        assert ctx.stats.transient_cache_hits > 0
        assert ctx.stats.transient_cache_misses == misses_after_first


class TestDerivedContexts:
    def test_at_time_occupancies_match_parent(self, ctx1):
        child = ctx1.at_time(1.5)
        for s in (0.0, 0.3, 1.0, 2.5):
            np.testing.assert_allclose(
                child.occupancy(s),
                ctx1.occupancy(1.5 + s),
                rtol=0.0,
                atol=1e-9,
            )

    def test_at_time_shares_trajectory_when_autonomous(self, ctx1):
        child = ctx1.at_time(2.0)
        assert isinstance(child.trajectory, ShiftedTrajectory)
        assert child.stats is ctx1.stats

    def test_at_time_shares_steady_state(self, ctx1):
        steady = ctx1.steady_state()
        child = ctx1.at_time(3.0)
        solves_before = ctx1.stats.solve_ivp_calls
        np.testing.assert_array_equal(child.steady_state(), steady)
        # Served from the shared box: no new long-run integration.
        assert ctx1.stats.solve_ivp_calls == solves_before

    def test_at_time_generator_matches_parent_shift(self, ctx1):
        child = ctx1.at_time(1.0)
        np.testing.assert_array_equal(
            child.generator_function()(0.5),
            ctx1.generator_function()(1.5),
        )

    def test_time_dependent_model_does_not_share_trajectory(self):
        model = diurnal_virus_model()
        assert model.local.has_time_dependent_rates
        m0 = np.full(model.num_states, 1.0 / model.num_states)
        ctx = EvaluationContext(model, m0)
        child = ctx.at_time(2.0)
        # The child re-solves from its own origin with global time reset —
        # sharing the parent's clock would change the diurnal phase.
        assert not isinstance(child.trajectory, ShiftedTrajectory)
        # Steady box and stats are still shared (basin and counters are
        # clock-independent).
        assert child._steady_box is ctx._steady_box
        assert child.stats is ctx.stats

    def test_steady_context_reuses_steady_result(self, ctx1):
        steady = ctx1.steady_state()
        sc = ctx1.steady_context()
        np.testing.assert_array_equal(sc.steady_state(), steady)
        assert sc.stats is ctx1.stats


class TestVectorizedTrajectory:
    def test_eval_many_matches_scalar_calls(self, ctx1):
        ts = np.linspace(0.0, 5.0, 41)
        many = ctx1.occupancy_many(ts)
        assert many.shape == (41, ctx1.num_states)
        for i, t in enumerate(ts):
            np.testing.assert_allclose(
                many[i], ctx1.occupancy(t), rtol=0.0, atol=1e-12
            )

    def test_eval_many_rejects_negative_times(self, ctx1):
        with pytest.raises(Exception):
            ctx1.occupancy_many(np.array([-0.5, 1.0]))

    def test_shifted_trajectory_composes(self, ctx1):
        traj = ctx1.trajectory
        twice = traj.shifted(1.0).shifted(0.5)
        np.testing.assert_allclose(
            twice(0.25), traj(1.75), rtol=0.0, atol=1e-12
        )


class TestStats:
    def test_counters_accumulate_over_a_check(self, virus1, m_example1):
        stats = EvalStats()
        ctx = EvaluationContext(virus1, m_example1, stats=stats)
        checker = MFModelChecker(virus1)
        checker.check(
            "EP[<0.5](not_infected U[0,1] infected)", m_example1, ctx=ctx
        )
        assert stats.rhs_evaluations > 0
        assert stats.solve_ivp_calls > 0
        assert stats.generator_evals > 0
        d = stats.as_dict()
        assert d["rhs_evaluations"] == stats.rhs_evaluations
        stats.reset()
        assert stats.rhs_evaluations == 0

    def test_fresh_context_has_private_stats(self, virus1, m_example1):
        a = EvaluationContext(virus1, m_example1)
        b = EvaluationContext(virus1, m_example1)
        assert a.stats is not b.stats


class TestEngineClearInPlace:
    """Regression: :meth:`EvaluationContext.clear_caches` must clear the
    shared propagator engines *in place*.  It used to only drop the
    context's lookup dicts — engine handles captured by ``at_time``
    children (which share the engine dict) kept serving stale cells
    after the parent's clear."""

    def test_shared_engine_cells_are_cleared_in_place(self, ctx1):
        q_abs = absorbing_generator_function(
            ctx1.generator_function(), INFECTED
        )
        sig = ("absorbing", INFECTED)
        handle = ctx1.propagator_engine(sig, q_abs)
        handle.propagate(0.0, 1.0)
        engine = ctx1._propagator_engines[sig]
        assert engine.num_cached_cells > 0

        # A derived context captures a handle onto the *same* engine.
        child = ctx1.at_time(0.5)
        child_handle = child.propagator_engine(sig, q_abs)
        assert child._propagator_engines is ctx1._propagator_engines
        expected = handle.propagate(0.5, 1.0)  # == child's Pi(0, 1)

        ctx1.clear_caches()
        assert engine.num_cached_cells == 0
        assert ctx1._propagator_engines[sig] is engine  # still registered

        # The captured handle observes the invalidation and rebuilds;
        # the rebuilt answer matches the pre-clear one.
        rebuilt = child_handle.propagate(0.0, 1.0)
        np.testing.assert_allclose(rebuilt, expected, atol=1e-9)
        assert engine.num_cached_cells > 0

    def test_cache_nbytes_drops_to_zero_after_clear(self, ctx1):
        q_abs = absorbing_generator_function(
            ctx1.generator_function(), INFECTED
        )
        sig = ("absorbing", INFECTED)
        ctx1.propagator_engine(sig, q_abs).propagate(0.0, 1.0)
        ctx1.transient_matrix(sig, q_abs, 0.0, 1.0)
        assert ctx1.cache_nbytes() > 0
        ctx1.clear_caches()
        assert ctx1.cache_nbytes() == 0

    def test_transient_cache_roundtrips_through_export_import(
        self, virus1, m_example1
    ):
        donor = EvaluationContext(virus1, m_example1)
        q_abs = absorbing_generator_function(
            donor.generator_function(), INFECTED
        )
        sig = ("absorbing", INFECTED)
        pi = donor.transient_matrix(sig, q_abs, 0.0, 1.0)
        exported = donor.export_transient_cache()
        assert exported

        fresh = EvaluationContext(virus1, m_example1)
        fresh.import_transient_cache(exported)
        q_abs2 = absorbing_generator_function(
            fresh.generator_function(), INFECTED
        )
        solves_before = fresh.stats.solve_ivp_calls
        served = fresh.transient_matrix(sig, q_abs2, 0.0, 1.0)
        np.testing.assert_array_equal(served, pi)
        assert fresh.stats.transient_cache_hits == 1
        # Served from the imported cache: no Kolmogorov re-solve.
        assert fresh.stats.solve_ivp_calls == solves_before
