"""Tests for the batched multi-query front-end (``check_many``)."""

import numpy as np
import pytest

from repro.checking import MFModelChecker
from repro.exceptions import FormulaError

M1 = np.array([0.8, 0.15, 0.05])
M2 = np.array([0.6, 0.3, 0.1])

F_CHECK = "EP[<0.3](not_infected U[0,1] infected)"
F_VALUE = "E[<0.5](infected)"


@pytest.fixture
def checker(virus1) -> MFModelChecker:
    return MFModelChecker(virus1)


class TestCheckMany:
    def test_matches_individual_calls(self, checker):
        queries = [
            {"command": "check", "formula": F_CHECK, "occupancy": M1},
            {"command": "value", "formula": F_VALUE, "occupancy": M1},
            {"command": "check", "formula": F_CHECK, "occupancy": M2},
            {"command": "csat", "formula": F_VALUE, "occupancy": M1,
             "theta": 2.0},
        ]
        results = checker.check_many(queries)
        assert len(results) == 4
        assert results[0].holds == checker.check(F_CHECK, M1)
        assert results[1] == pytest.approx(checker.value(F_VALUE, M1))
        assert results[2].holds == checker.check(F_CHECK, M2)
        expected = checker.conditional_sat(F_VALUE, M1, 2.0)
        assert results[3].intervals == expected.intervals

    def test_tuple_queries_are_checks(self, checker):
        results = checker.check_many([(F_CHECK, M1), (F_VALUE, M2)])
        assert results[0].holds == checker.check(F_CHECK, M1)
        assert results[1].holds == checker.check(F_VALUE, M2)

    def test_duplicates_fan_out_same_result_object(self, checker):
        q = {"command": "check", "formula": F_CHECK, "occupancy": M1}
        results = checker.check_many([dict(q), dict(q), dict(q)])
        assert results[0] is results[1] is results[2]

    def test_occupancy_groups_share_one_context(self, checker, monkeypatch):
        built = []
        original = MFModelChecker.context

        def counting(self, occupancy):
            ctx = original(self, occupancy)
            built.append(ctx)
            return ctx

        monkeypatch.setattr(MFModelChecker, "context", counting)
        checker.check_many(
            [
                {"formula": F_CHECK, "occupancy": M1},
                {"formula": F_VALUE, "occupancy": M1, "command": "value"},
                {"formula": F_CHECK, "occupancy": M2},
                {"formula": F_VALUE, "occupancy": M1, "command": "csat",
                 "theta": 1.0},
            ]
        )
        # Two distinct occupancies -> exactly two contexts built.
        assert len(built) == 2

    def test_order_is_preserved(self, checker):
        queries = [
            {"command": "value", "formula": F_VALUE, "occupancy": M2},
            {"command": "check", "formula": F_CHECK, "occupancy": M1},
        ]
        results = checker.check_many(queries)
        assert isinstance(results[0], float)
        assert hasattr(results[1], "holds")

    def test_empty_batch(self, checker):
        assert checker.check_many([]) == []

    def test_unknown_command_raises(self, checker):
        with pytest.raises(FormulaError, match="unknown batch command"):
            checker.check_many(
                [{"command": "explode", "formula": F_CHECK,
                  "occupancy": M1}]
            )

    def test_missing_fields_raise(self, checker):
        with pytest.raises(FormulaError, match="formula and an occupancy"):
            checker.check_many([{"formula": F_CHECK}])

    def test_malformed_query_shape_raises(self, checker):
        with pytest.raises(FormulaError, match="batch queries"):
            checker.check_many([42])
