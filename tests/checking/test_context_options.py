"""Tests for EvaluationContext and CheckOptions."""

import numpy as np
import pytest

from repro.checking.context import EvaluationContext
from repro.checking.options import CheckOptions
from repro.exceptions import InvalidOccupancyError, ModelError


class TestCheckOptions:
    def test_defaults_valid(self):
        options = CheckOptions()
        assert options.until_method == "auto"
        assert options.curve_method == "propagate"
        assert options.start_convention == "standard"

    def test_with_replaces_fields(self):
        options = CheckOptions().with_(grid_points=65)
        assert options.grid_points == 65
        assert options.ode_rtol == CheckOptions().ode_rtol

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"grid_points": 2},
            {"until_method": "bogus"},
            {"curve_method": "bogus"},
            {"start_convention": "bogus"},
            {"ode_rtol": 0.0},
            {"crossing_xtol": -1.0},
            {"horizon_margin": -1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ModelError):
            CheckOptions(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            CheckOptions().grid_points = 5


class TestEvaluationContext:
    def test_initial_normalized_copy(self, virus1):
        raw = [0.8, 0.15, 0.05]
        ctx = EvaluationContext(virus1, raw)
        assert ctx.initial.sum() == pytest.approx(1.0)
        assert ctx.num_states == 3

    def test_invalid_initial_rejected(self, virus1):
        with pytest.raises(InvalidOccupancyError):
            EvaluationContext(virus1, [0.5, 0.1, 0.1])

    def test_trajectory_cached(self, ctx1):
        assert ctx1.trajectory is ctx1.trajectory

    def test_occupancy_evolves(self, ctx1):
        m0 = ctx1.occupancy(0.0)
        m5 = ctx1.occupancy(5.0)
        assert not np.allclose(m0, m5)

    def test_generator_function_tracks_trajectory(self, ctx1):
        q_of_t = ctx1.generator_function()
        assert q_of_t(0.0)[0, 1] == pytest.approx(0.9 * 0.05 / 0.8)

    def test_steady_state_cached_and_correct(self, ctx1):
        steady = ctx1.steady_state()
        assert np.allclose(steady, [1.0, 0.0, 0.0], atol=1e-6)
        # Returned arrays are copies: mutating one must not leak.
        steady[0] = 0.0
        assert ctx1.steady_state()[0] == pytest.approx(1.0, abs=1e-6)

    def test_steady_context_is_fixed_point(self, ctx1):
        sctx = ctx1.steady_context()
        m0 = sctx.occupancy(0.0)
        m9 = sctx.occupancy(9.0)
        assert np.allclose(m0, m9, atol=1e-7)

    def test_steady_context_cached(self, ctx1):
        assert ctx1.steady_context() is ctx1.steady_context()

    def test_at_time_zero_is_self(self, ctx1):
        assert ctx1.at_time(0.0) is ctx1

    def test_at_time_shifts_origin(self, ctx1):
        shifted = ctx1.at_time(3.0)
        assert np.allclose(shifted.initial, ctx1.occupancy(3.0), atol=1e-9)
