"""Cross-validation: independent algorithms must agree.

This is the backbone of the reproduction's trust story (DESIGN.md §5):

1. on *constant-rate* models the inhomogeneous mean-field checker must
   match the classical uniformization-based CSL checker;
2. the Monte-Carlo (statistical) checker must agree with the analytic
   probabilities within sampling error;
3. the two curve evaluation methods (window-shift ODE vs recomputation)
   must coincide — covered in test_reachability/test_nested and
   benchmarked in A3.
"""

import numpy as np
import pytest

from repro.checking.context import EvaluationContext
from repro.checking.homogeneous import HomogeneousChecker
from repro.checking.local import LocalChecker
from repro.checking.statistical import StatisticalChecker
from repro.logic.parser import parse_csl, parse_path


@pytest.fixture
def pair(homogeneous_model):
    """(mean-field local checker, classical checker) on the same chain."""
    ctx = EvaluationContext(homogeneous_model, np.array([0.4, 0.3, 0.3]))
    q = homogeneous_model.local.constant_generator()
    labels = {
        i: homogeneous_model.local.labels_of(name)
        for i, name in enumerate(homogeneous_model.local.states)
    }
    return LocalChecker(ctx), HomogeneousChecker(q, labels)


PATH_FORMULAS = [
    "tt U[0,1] goal",
    "tt U[0,3] goal",
    "low U[0,2] mid",
    "!goal U[0.5,2] goal",
    "(low | mid) U[1,4] high",
    "X[0,1] mid",
    "X[0.3,2] goal",
]


class TestHomogeneousAgreement:
    @pytest.mark.parametrize("text", PATH_FORMULAS)
    def test_path_probabilities_match(self, pair, text):
        local, classical = pair
        path = parse_path(text)
        ours = local.path_probabilities(path)
        baseline = classical.path_probabilities(path)
        assert np.allclose(ours, baseline, atol=1e-6), text

    @pytest.mark.parametrize(
        "text",
        [
            "P[>0.5](tt U[0,2] goal)",
            "P[<0.2](low U[0,1] high)",
            "!P[>=0.3](tt U[0,1] goal) | mid",
        ],
    )
    def test_sat_sets_match(self, pair, text):
        local, classical = pair
        phi = parse_csl(text)
        assert local.sat_at(phi) == classical.sat(phi), text

    def test_steady_state_matches(self, pair):
        local, classical = pair
        phi = parse_csl("S[>0.3](goal)")
        assert local.sat_at(phi) == classical.sat(phi)

    def test_evaluation_time_is_irrelevant_for_constant_rates(self, pair):
        local, _ = pair
        path = parse_path("tt U[0,2] goal")
        p0 = local.path_probabilities(path, 0.0)
        p5 = local.path_probabilities(path, 5.0)
        assert np.allclose(p0, p5, atol=1e-6)


class TestStatisticalAgreement:
    def test_until_probability_within_ci(self, ctx1):
        """Monte-Carlo vs Kolmogorov on the (inhomogeneous) virus model."""
        local = LocalChecker(ctx1)
        path = parse_path("not_infected U[0,1] infected")
        analytic = local.path_probabilities(path)
        stat = StatisticalChecker(ctx1, samples=3000, seed=42)
        estimate = stat.path_probability(path, "s1")
        lo, hi = estimate.confidence_interval(z=3.5)
        assert lo <= analytic[0] <= hi

    def test_trivially_satisfied_start(self, ctx1):
        stat = StatisticalChecker(ctx1, samples=200, seed=1)
        path = parse_path("tt U[0,1] infected")
        estimate = stat.path_probability(path, "s2")
        assert estimate.value == 1.0

    def test_expected_probability_within_ci(self, ctx1):
        from repro.checking.global_ import MFModelChecker

        checker = MFModelChecker(ctx1.model, ctx1.options)
        analytic = checker.value(
            "EP[<1](not_infected U[0,1] infected)", ctx1.initial
        )
        stat = StatisticalChecker(ctx1, samples=2000, seed=7)
        estimate = stat.expected_probability(
            parse_path("not_infected U[0,1] infected")
        )
        lo, hi = estimate.confidence_interval(z=3.5)
        assert lo <= analytic <= hi

    def test_next_estimate(self, ctx1):
        local = LocalChecker(ctx1)
        path = parse_path("X[0,1] infected")
        analytic = local.path_probabilities(path)[1]
        stat = StatisticalChecker(ctx1, samples=3000, seed=9)
        estimate = stat.path_probability(path, "s2")
        lo, hi = estimate.confidence_interval(z=3.5)
        assert lo <= analytic <= hi


class TestCrossValidationBothEngines:
    """Monte-Carlo vs the analytic transient solver, within 3 sigma, on
    two bundled models and through both sampling engines.

    The virus model exercises occupancy-dependent (inhomogeneous) rates;
    the SIS epidemic is the canonical two-state mean-field example with a
    genuinely moving trajectory.  Seeds are fixed, so these never flake —
    they pin that the chosen seeds land inside the 3-sigma band.
    """

    @pytest.mark.parametrize("method", ["batched", "serial"])
    def test_virus_until(self, ctx1, method):
        path = parse_path("not_infected U[0,1] infected")
        analytic = LocalChecker(ctx1).path_probabilities(path)[0]
        estimate = StatisticalChecker(
            ctx1, samples=2000, seed=12, method=method
        ).path_probability(path, "s1")
        lo, hi = estimate.confidence_interval(z=3.0)
        assert lo <= analytic <= hi

    @pytest.mark.parametrize("method", ["batched", "serial"])
    def test_sis_until(self, method):
        from repro.models.epidemic import SisParameters, sis_model

        model = sis_model(SisParameters(beta=2.0, gamma=1.0))
        ctx = EvaluationContext(model, np.array([0.9, 0.1]))
        path = parse_path("susceptible U[0,1.5] infected")
        analytic = LocalChecker(ctx).path_probabilities(path)[0]
        estimate = StatisticalChecker(
            ctx, samples=2000, seed=15, method=method
        ).path_probability(path, "S")
        lo, hi = estimate.confidence_interval(z=3.0)
        assert lo <= analytic <= hi

    def test_sis_next(self):
        from repro.models.epidemic import sis_model

        model = sis_model()
        ctx = EvaluationContext(model, np.array([0.6, 0.4]))
        path = parse_path("X[0.2,1] susceptible")
        analytic = LocalChecker(ctx).path_probabilities(path)[1]
        estimate = StatisticalChecker(
            ctx, samples=3000, seed=23
        ).path_probability(path, "I")
        lo, hi = estimate.confidence_interval(z=3.0)
        assert lo <= analytic <= hi
