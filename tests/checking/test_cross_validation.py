"""Cross-validation: independent algorithms must agree.

This is the backbone of the reproduction's trust story (DESIGN.md §5):

1. on *constant-rate* models the inhomogeneous mean-field checker must
   match the classical uniformization-based CSL checker;
2. the Monte-Carlo (statistical) checker must agree with the analytic
   probabilities within sampling error;
3. the two curve evaluation methods (window-shift ODE vs recomputation)
   must coincide — covered in test_reachability/test_nested and
   benchmarked in A3;
4. the three transient backends — the window-shift ODE propagator of
   Equation (6) (:class:`TransitionMatrixPropagator`), the cached
   cell-product engine (``curve_method="cells"``) and brute-force
   per-time recomputation — must agree on every model and window shape,
   including windows straddling several satisfaction-set discontinuity
   points.
"""

import numpy as np
import pytest

from repro.checking.context import EvaluationContext
from repro.checking.homogeneous import HomogeneousChecker
from repro.checking.local import LocalChecker
from repro.checking.statistical import StatisticalChecker
from repro.logic.parser import parse_csl, parse_path


@pytest.fixture
def pair(homogeneous_model):
    """(mean-field local checker, classical checker) on the same chain."""
    ctx = EvaluationContext(homogeneous_model, np.array([0.4, 0.3, 0.3]))
    q = homogeneous_model.local.constant_generator()
    labels = {
        i: homogeneous_model.local.labels_of(name)
        for i, name in enumerate(homogeneous_model.local.states)
    }
    return LocalChecker(ctx), HomogeneousChecker(q, labels)


PATH_FORMULAS = [
    "tt U[0,1] goal",
    "tt U[0,3] goal",
    "low U[0,2] mid",
    "!goal U[0.5,2] goal",
    "(low | mid) U[1,4] high",
    "X[0,1] mid",
    "X[0.3,2] goal",
]


class TestHomogeneousAgreement:
    @pytest.mark.parametrize("text", PATH_FORMULAS)
    def test_path_probabilities_match(self, pair, text):
        local, classical = pair
        path = parse_path(text)
        ours = local.path_probabilities(path)
        baseline = classical.path_probabilities(path)
        assert np.allclose(ours, baseline, atol=1e-6), text

    @pytest.mark.parametrize(
        "text",
        [
            "P[>0.5](tt U[0,2] goal)",
            "P[<0.2](low U[0,1] high)",
            "!P[>=0.3](tt U[0,1] goal) | mid",
        ],
    )
    def test_sat_sets_match(self, pair, text):
        local, classical = pair
        phi = parse_csl(text)
        assert local.sat_at(phi) == classical.sat(phi), text

    def test_steady_state_matches(self, pair):
        local, classical = pair
        phi = parse_csl("S[>0.3](goal)")
        assert local.sat_at(phi) == classical.sat(phi)

    def test_evaluation_time_is_irrelevant_for_constant_rates(self, pair):
        local, _ = pair
        path = parse_path("tt U[0,2] goal")
        p0 = local.path_probabilities(path, 0.0)
        p5 = local.path_probabilities(path, 5.0)
        assert np.allclose(p0, p5, atol=1e-6)


class TestStatisticalAgreement:
    def test_until_probability_within_ci(self, ctx1):
        """Monte-Carlo vs Kolmogorov on the (inhomogeneous) virus model."""
        local = LocalChecker(ctx1)
        path = parse_path("not_infected U[0,1] infected")
        analytic = local.path_probabilities(path)
        stat = StatisticalChecker(ctx1, samples=3000, seed=42)
        estimate = stat.path_probability(path, "s1")
        lo, hi = estimate.confidence_interval(z=3.5)
        assert lo <= analytic[0] <= hi

    def test_trivially_satisfied_start(self, ctx1):
        stat = StatisticalChecker(ctx1, samples=200, seed=1)
        path = parse_path("tt U[0,1] infected")
        estimate = stat.path_probability(path, "s2")
        assert estimate.value == 1.0

    def test_expected_probability_within_ci(self, ctx1):
        from repro.checking.global_ import MFModelChecker

        checker = MFModelChecker(ctx1.model, ctx1.options)
        analytic = checker.value(
            "EP[<1](not_infected U[0,1] infected)", ctx1.initial
        )
        stat = StatisticalChecker(ctx1, samples=2000, seed=7)
        estimate = stat.expected_probability(
            parse_path("not_infected U[0,1] infected")
        )
        lo, hi = estimate.confidence_interval(z=3.5)
        assert lo <= analytic <= hi

    def test_next_estimate(self, ctx1):
        local = LocalChecker(ctx1)
        path = parse_path("X[0,1] infected")
        analytic = local.path_probabilities(path)[1]
        stat = StatisticalChecker(ctx1, samples=3000, seed=9)
        estimate = stat.path_probability(path, "s2")
        lo, hi = estimate.confidence_interval(z=3.5)
        assert lo <= analytic <= hi


class TestCrossValidationBothEngines:
    """Monte-Carlo vs the analytic transient solver, within 3 sigma, on
    two bundled models and through both sampling engines.

    The virus model exercises occupancy-dependent (inhomogeneous) rates;
    the SIS epidemic is the canonical two-state mean-field example with a
    genuinely moving trajectory.  Seeds are fixed, so these never flake —
    they pin that the chosen seeds land inside the 3-sigma band.
    """

    @pytest.mark.parametrize("method", ["batched", "serial"])
    def test_virus_until(self, ctx1, method):
        path = parse_path("not_infected U[0,1] infected")
        analytic = LocalChecker(ctx1).path_probabilities(path)[0]
        estimate = StatisticalChecker(
            ctx1, samples=2000, seed=12, method=method
        ).path_probability(path, "s1")
        lo, hi = estimate.confidence_interval(z=3.0)
        assert lo <= analytic <= hi

    @pytest.mark.parametrize("method", ["batched", "serial"])
    def test_sis_until(self, method):
        from repro.models.epidemic import SisParameters, sis_model

        model = sis_model(SisParameters(beta=2.0, gamma=1.0))
        ctx = EvaluationContext(model, np.array([0.9, 0.1]))
        path = parse_path("susceptible U[0,1.5] infected")
        analytic = LocalChecker(ctx).path_probabilities(path)[0]
        estimate = StatisticalChecker(
            ctx, samples=2000, seed=15, method=method
        ).path_probability(path, "S")
        lo, hi = estimate.confidence_interval(z=3.0)
        assert lo <= analytic <= hi

    def test_sis_next(self):
        from repro.models.epidemic import sis_model

        model = sis_model()
        ctx = EvaluationContext(model, np.array([0.6, 0.4]))
        path = parse_path("X[0.2,1] susceptible")
        analytic = LocalChecker(ctx).path_probabilities(path)[1]
        estimate = StatisticalChecker(
            ctx, samples=3000, seed=23
        ).path_probability(path, "I")
        lo, hi = estimate.confidence_interval(z=3.0)
        assert lo <= analytic <= hi


class TestTransientBackendsAgree:
    """Equation (6) window-shift ODE vs cached cell products vs
    per-time recomputation — all three must coincide.

    The window-shift propagator integrates ``dΠ/dt = -QΠ + ΠQ(t+T)``
    once with dense output; the cell engine composes cached ``expm``
    kernels; recomputation solves the forward equation from scratch at
    every time.  They share no code beyond the generator, so agreement
    to the propagator tolerance is a genuine three-way cross-check.
    """

    TOL = 1e-6  # the engine's propagator_tol default

    @staticmethod
    def _three_way(model, occupancy, absorbed, window, times):
        """Π(t, t+window) of the absorbed chain via all three backends."""
        from repro.checking.transform import absorbing_generator_function
        from repro.ctmc.inhomogeneous import TransitionMatrixPropagator

        ctx = EvaluationContext(model, occupancy)
        horizon = max(times) + window
        q_mod = absorbing_generator_function(
            ctx.generator_function(), frozenset(absorbed)
        )

        shift = TransitionMatrixPropagator(
            q_mod, window, 0.0, max(times)
        )
        eng = ctx.propagator_engine(
            ("absorbing", frozenset(absorbed)), q_mod
        )
        eng.ensure(0.0, horizon, window=window)
        for t in times:
            via_shift = shift(t)
            via_cells = eng.propagate(t, window)
            via_ode = ctx.transient_matrix(
                ("absorbing", frozenset(absorbed)),
                q_mod,
                t,
                window,
                method="ode",
            )
            assert np.max(np.abs(via_cells - via_ode)) < TestTransientBackendsAgree.TOL
            assert np.max(np.abs(via_shift - via_ode)) < TestTransientBackendsAgree.TOL

    def test_virus_model(self, virus1, m_example1):
        self._three_way(
            virus1, m_example1, {2}, 1.5, [0.0, 0.8, 2.3, 4.0]
        )

    def test_gossip_model(self):
        from repro.models.gossip import gossip_model

        model = gossip_model()
        self._three_way(
            model,
            np.array([0.9, 0.1, 0.0]),
            {2},
            2.0,
            [0.0, 1.1, 3.6],
        )

    @pytest.mark.parametrize("t1", [0.0, 0.7])
    def test_nested_curves_agree_across_discontinuities(self, ctx2, t1):
        """Windows straddling TWO satisfaction-set discontinuity points:
        cells vs recompute (and, for t1=0, the Appendix ODE) agree."""
        from repro.checking.nested import TimeVaryingUntil
        from repro.checking.satsets import Piece, PiecewiseSatSet
        from repro.logic.ast import TimeInterval

        theta, upper = 4.0, 8.0
        hi = theta + upper
        g1 = PiecewiseSatSet.constant(frozenset({0, 1}), 0.0, hi)
        # Two discontinuities at 3.1 and 6.4 — a [t, t+8] window with
        # t in (0, theta) straddles both.
        g2 = PiecewiseSatSet(
            [
                Piece(0.0, 3.1, frozenset({2})),
                Piece(3.1, 6.4, frozenset({1, 2})),
                Piece(6.4, hi, frozenset({2})),
            ]
        )
        solver = TimeVaryingUntil(
            ctx2, g1, g2, TimeInterval(t1, upper), theta=theta
        )
        times = np.linspace(0.0, theta, 9)
        slow = np.stack(
            [solver.curve(method="recompute").values(t) for t in times]
        )
        cells = solver.curve(method="cells").values_many(times)
        assert np.max(np.abs(cells - slow)) < self.TOL
        if t1 == 0.0:
            fast = np.stack(
                [solver.curve(method="propagate").values(t) for t in times]
            )
            assert np.max(np.abs(fast - slow)) < 1e-5

    def test_gossip_nested_cells(self):
        """Time-varying until on the gossip model, cells vs recompute."""
        from repro.models.gossip import gossip_model
        from repro.checking.nested import TimeVaryingUntil
        from repro.checking.satsets import Piece, PiecewiseSatSet
        from repro.logic.ast import TimeInterval

        model = gossip_model()
        ctx = EvaluationContext(model, np.array([0.85, 0.15, 0.0]))
        theta, upper = 3.0, 5.0
        hi = theta + upper
        g1 = PiecewiseSatSet.constant(frozenset({0, 1}), 0.0, hi)
        g2 = PiecewiseSatSet(
            [
                Piece(0.0, 2.6, frozenset({1})),
                Piece(2.6, 5.2, frozenset({1, 2})),
                Piece(5.2, hi, frozenset({2})),
            ]
        )
        solver = TimeVaryingUntil(
            ctx, g1, g2, TimeInterval(0, upper), theta=theta
        )
        times = np.linspace(0.0, theta, 7)
        slow = np.stack(
            [solver.curve(method="recompute").values(t) for t in times]
        )
        cells = solver.curve(method="cells").values_many(times)
        assert np.max(np.abs(cells - slow)) < self.TOL
