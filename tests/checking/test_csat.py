"""Tests for conditional satisfaction sets (Section V-B, Table I)."""

import numpy as np
import pytest

from repro.checking import MFModelChecker
from repro.checking.csat import threshold_intervals
from repro.checking.intervals import IntervalSet
from repro.logic.ast import Bound


class TestThresholdIntervals:
    def test_monotone_function(self):
        result = threshold_intervals(
            lambda t: t / 10.0, 0.0, 10.0, Bound("<", 0.5)
        )
        assert len(result.intervals) == 1
        a, b = result.intervals[0]
        assert a == pytest.approx(0.0)
        assert b == pytest.approx(5.0, abs=1e-8)

    def test_oscillating_function(self):
        result = threshold_intervals(
            lambda t: np.sin(t), 0.0, 2 * np.pi, Bound(">", 0.0),
            grid_points=65,
        )
        assert len(result.intervals) == 1
        a, b = result.intervals[0]
        assert a == pytest.approx(0.0, abs=1e-6)
        assert b == pytest.approx(np.pi, abs=1e-6)

    def test_never_satisfied(self):
        result = threshold_intervals(
            lambda t: 0.9, 0.0, 5.0, Bound("<", 0.5)
        )
        assert result.is_empty

    def test_always_satisfied(self):
        result = threshold_intervals(
            lambda t: 0.1, 0.0, 5.0, Bound("<", 0.5)
        )
        assert result == IntervalSet.whole(5.0)

    def test_zero_at_final_grid_point_becomes_breakpoint(self):
        """Regression: an exact zero of ``g - p`` at the *last* grid point
        of a segment is never ``vals[i]`` in the bracketing scan, so it
        used to be dropped — losing the sliver where the bound flips."""
        # The scan grid for [0, 1] is linspace(eps, 1 - eps, n) with
        # eps = 1e-9; linspace pins its endpoint exactly, so g crosses
        # the threshold *exactly at* the final grid point.
        target = 1.0 - 1e-9
        g = lambda t: 0.5 + (t - target)
        result = threshold_intervals(g, 0.0, 1.0, Bound(">", 0.5))
        assert not result.is_empty
        a, b = result.intervals[-1]
        assert a == pytest.approx(target, abs=1e-12)
        assert b == pytest.approx(1.0)
        # The complementary bound gets everything up to the touch point.
        below = threshold_intervals(g, 0.0, 1.0, Bound("<", 0.5))
        assert below.intervals[0][1] == pytest.approx(target, abs=1e-12)

    def test_interior_grid_zero_still_handled(self):
        """An exact zero at an interior grid point splits the segment."""
        ts = __import__("numpy").linspace(1e-9, 1.0 - 1e-9, 129)
        touch = float(ts[64])
        g = lambda t: 0.5 + (t - touch)
        result = threshold_intervals(g, 0.0, 1.0, Bound(">=", 0.5))
        a, _ = result.intervals[-1]
        assert a == pytest.approx(touch, abs=1e-12)

    def test_jump_handled_via_discontinuities(self):
        g = lambda t: 0.1 if t < 2.0 else 0.9
        result = threshold_intervals(
            g, 0.0, 5.0, Bound("<", 0.5), discontinuities=[2.0]
        )
        assert len(result.intervals) == 1
        assert result.intervals[0][1] == pytest.approx(2.0, abs=1e-6)


class TestConditionalSatBoolean:
    @pytest.fixture
    def checker(self, virus1) -> MFModelChecker:
        return MFModelChecker(virus1)

    def test_tt_whole_horizon(self, checker, m_example1):
        assert checker.conditional_sat("tt", m_example1, 7.0) == IntervalSet.whole(7.0)

    def test_ff_empty(self, checker, m_example1):
        assert checker.conditional_sat("ff", m_example1, 7.0).is_empty

    def test_negation_is_complement(self, checker, m_example1):
        psi = "E[>0.15](infected)"
        pos = checker.conditional_sat(psi, m_example1, 10.0)
        neg = checker.conditional_sat(f"!({psi})", m_example1, 10.0)
        assert pos.intersection(neg).measure() == pytest.approx(0.0, abs=1e-6)
        assert pos.union(neg).measure() == pytest.approx(10.0, abs=1e-6)

    def test_conjunction_is_intersection(self, checker, m_example1):
        a = "E[>0.15](infected)"
        b = "E[<0.19](infected)"
        sat_a = checker.conditional_sat(a, m_example1, 10.0)
        sat_b = checker.conditional_sat(b, m_example1, 10.0)
        sat_ab = checker.conditional_sat(f"{a} & {b}", m_example1, 10.0)
        assert sat_ab.approx_equal(sat_a.intersection(sat_b), tol=1e-6)

    def test_disjunction_is_union(self, checker, m_example1):
        a = "E[>0.19](infected)"
        b = "E[<0.05](infected)"
        sat_a = checker.conditional_sat(a, m_example1, 40.0)
        sat_b = checker.conditional_sat(b, m_example1, 40.0)
        sat_ab = checker.conditional_sat(f"{a} | {b}", m_example1, 40.0)
        assert sat_ab.approx_equal(sat_a.union(sat_b), tol=1e-5)


class TestConditionalSatLeaves:
    @pytest.fixture
    def checker(self, virus1) -> MFModelChecker:
        return MFModelChecker(virus1)

    def test_expectation_crossing_time(self, checker, m_example1):
        """Infected fraction decays from 0.2 through 0.15; cSat boundary
        must sit exactly where the trajectory crosses the threshold."""
        psi = "E[>=0.15](infected)"
        result = checker.conditional_sat(psi, m_example1, 30.0)
        assert len(result.intervals) == 1
        a, b = result.intervals[0]
        assert a == pytest.approx(0.0)
        traj = checker.model.trajectory(m_example1, horizon=30.0)
        m_at_boundary = traj(b)
        assert m_at_boundary[1] + m_at_boundary[2] == pytest.approx(
            0.15, abs=1e-6
        )

    def test_expected_steady_state_constant(self, checker, m_example1):
        # The ES value is time-independent: whole horizon or empty.
        assert checker.conditional_sat(
            "ES[>0.9](not_infected)", m_example1, 12.0
        ) == IntervalSet.whole(12.0)
        assert checker.conditional_sat(
            "ES[>0.1](infected)", m_example1, 12.0
        ).is_empty

    def test_expected_probability_monotone_decay(self, checker, m_example1):
        """EP of infection shrinks in Setting 1, so an upper bound that
        starts violated becomes satisfied at a unique crossing."""
        value0 = checker.value(
            "EP[<0.1](not_infected U[0,1] infected)", m_example1
        )
        assert value0 > 0.1  # violated at time zero (standard semantics)
        result = checker.conditional_sat(
            "EP[<0.1](not_infected U[0,1] infected)", m_example1, 40.0
        )
        assert len(result.intervals) == 1
        a, b = result.intervals[0]
        assert a > 0.0
        assert b == pytest.approx(40.0)
        # At the boundary the EP value equals the threshold.
        g = checker.expected_probability_curve(
            "not_infected U[0,1] infected", m_example1, 40.0
        )
        assert g(a) == pytest.approx(0.1, abs=1e-6)

    def test_nested_formula_goes_through(self, virus2, m_example2):
        checker = MFModelChecker(virus2)
        psi = (
            "E[>0.8](P[>0.9](infected U[0,3] "
            "(P[>0.8](tt U[0,0.5] infected))))"
        )
        result = checker.conditional_sat(psi, m_example2, 2.0)
        # Under printed Setting 2 the inner formula never crosses 0.8, the
        # outer until holds only in infected states (fraction 0.15): the
        # expectation bound >0.8 is never met.
        assert result.is_empty
