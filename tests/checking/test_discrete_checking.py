"""Tests for the discrete-time checking adaptation."""

import numpy as np
import pytest

from repro.checking.discrete import DiscreteMFChecker
from repro.exceptions import UnsupportedFormulaError
from repro.logic.ast import Bound
from repro.logic.parser import parse_csl
from repro.meanfield.discrete import DiscreteLocalModel, DiscreteMeanFieldModel


@pytest.fixture
def model() -> DiscreteMeanFieldModel:
    """Discrete SIS-like model with occupancy-dependent infection."""
    local = DiscreteLocalModel(
        states=("healthy", "sick"),
        transitions={
            ("healthy", "sick"): lambda m: 0.4 * m[1],
            ("sick", "healthy"): 0.2,
        },
        labels={"healthy": ["healthy"], "sick": ["sick"]},
    )
    return DiscreteMeanFieldModel(local)


@pytest.fixture
def checker(model) -> DiscreteMFChecker:
    return DiscreteMFChecker(model)


HEALTHY = parse_csl("healthy")
SICK = parse_csl("sick")
TT = parse_csl("tt")


class TestUntilProbabilities:
    def test_zero_steps(self, checker):
        probs = checker.until_probabilities(
            HEALTHY, SICK, 0, np.array([0.7, 0.3])
        )
        # No step taken: only already-sick states satisfy.
        assert probs[0] == 0.0
        assert probs[1] == 1.0

    def test_monotone_in_steps(self, checker):
        m0 = np.array([0.7, 0.3])
        p1 = checker.until_probabilities(HEALTHY, SICK, 1, m0)[0]
        p5 = checker.until_probabilities(HEALTHY, SICK, 5, m0)[0]
        assert 0 < p1 < p5 <= 1

    def test_one_step_probability_exact(self, checker, model):
        m0 = np.array([0.7, 0.3])
        p = checker.until_probabilities(HEALTHY, SICK, 1, m0)[0]
        assert p == pytest.approx(0.4 * 0.3)

    def test_blocking_phi1(self, checker):
        # Φ1 = sick means healthy states are absorbing failures.
        probs = checker.until_probabilities(
            SICK, HEALTHY, 3, np.array([0.5, 0.5])
        )
        assert probs[1] > 0  # sick can recover within 3 steps
        assert probs[0] == 1.0  # already healthy (Φ2 start)

    def test_start_step_changes_rates(self, checker):
        """Later start means more infection pressure (spread grows)."""
        m0 = np.array([0.7, 0.3])
        early = checker.until_probabilities(HEALTHY, SICK, 1, m0)[0]
        later = checker.until_probabilities(
            HEALTHY, SICK, 1, m0, start_step=10
        )[0]
        assert later > early

    def test_negative_steps_rejected(self, checker):
        with pytest.raises(UnsupportedFormulaError):
            checker.until_probabilities(TT, SICK, -1, np.array([1.0, 0.0]))

    def test_nested_formula_rejected(self, checker):
        with pytest.raises(UnsupportedFormulaError):
            checker.until_probabilities(
                parse_csl("P[>0.5](tt U[0,1] sick)"),
                SICK,
                2,
                np.array([1.0, 0.0]),
            )


class TestGlobalOperators:
    def test_expectation_value(self, checker):
        assert checker.expectation_value(SICK, np.array([0.7, 0.3])) == 0.3
        assert checker.expectation_value(
            parse_csl("!sick"), np.array([0.7, 0.3])
        ) == pytest.approx(0.7)

    def test_check_expectation(self, checker):
        assert checker.check_expectation(SICK, Bound("<", 0.5), np.array([0.7, 0.3]))
        assert not checker.check_expectation(SICK, Bound(">", 0.5), np.array([0.7, 0.3]))

    def test_expected_probability(self, checker):
        m0 = np.array([0.7, 0.3])
        value = checker.expected_probability_value(TT, SICK, 2, m0)
        assert 0.3 < value < 1.0

    def test_check_expected_probability(self, checker):
        m0 = np.array([0.7, 0.3])
        assert checker.check_expected_probability(
            TT, SICK, 2, Bound(">", 0.3), m0
        )
