"""Tests for the full discrete-time local checker (nested formulas)."""

import numpy as np
import pytest

from repro.checking.discrete import DiscreteLocalChecker
from repro.exceptions import UnsupportedFormulaError
from repro.logic.parser import parse_csl, parse_path
from repro.meanfield.discrete import DiscreteLocalModel, DiscreteMeanFieldModel


@pytest.fixture
def model() -> DiscreteMeanFieldModel:
    """Discrete SIS-like model: infection pressure grows with spread."""
    local = DiscreteLocalModel(
        states=("healthy", "sick"),
        transitions={
            ("healthy", "sick"): lambda m: 0.4 * m[1],
            ("sick", "healthy"): 0.2,
        },
        labels={"healthy": ["healthy"], "sick": ["sick"]},
    )
    return DiscreteMeanFieldModel(local)


@pytest.fixture
def checker(model) -> DiscreteLocalChecker:
    return DiscreteLocalChecker(model, np.array([0.7, 0.3]))


@pytest.fixture
def homogeneous_checker() -> DiscreteLocalChecker:
    """Constant transition probabilities: an ordinary DTMC."""
    local = DiscreteLocalModel(
        states=("a", "b", "c"),
        transitions={
            ("a", "b"): 0.5,
            ("b", "c"): 0.3,
            ("b", "a"): 0.2,
            ("c", "a"): 0.1,
        },
        labels={"a": ["start"], "b": ["mid"], "c": ["goal"]},
    )
    model = DiscreteMeanFieldModel(local)
    return DiscreteLocalChecker(model, np.array([1.0, 0.0, 0.0]))


class TestBooleanLayer:
    def test_atoms_and_connectives(self, checker):
        assert checker.sat_at(parse_csl("sick")) == frozenset({1})
        assert checker.sat_at(parse_csl("!sick")) == frozenset({0})
        assert checker.sat_at(parse_csl("sick | healthy")) == frozenset({0, 1})
        assert checker.sat_at(parse_csl("sick & healthy")) == frozenset()

    def test_occupancy_iterates_extend(self, checker):
        m10 = checker.occupancy(10)
        assert m10.sum() == pytest.approx(1.0)
        assert m10[1] > 0.3  # infection grows

    def test_negative_step_rejected(self, checker):
        with pytest.raises(UnsupportedFormulaError):
            checker.occupancy(-1)


class TestUntilAgainstHandComputation:
    def test_one_step_until(self, checker):
        """P(healthy U[0,1] sick) from healthy = 0.4·m1(0) = 0.12."""
        probs = checker.path_probabilities(parse_path("healthy U[0,1] sick"))
        assert probs[0] == pytest.approx(0.4 * 0.3)
        assert probs[1] == 1.0  # already sick

    def test_two_step_until(self, checker, model):
        """Hand-rolled two-step computation."""
        m0 = np.array([0.7, 0.3])
        m1 = model.step(m0)
        p0 = 0.4 * m0[1]
        p1 = 0.4 * m1[1]
        expected = p0 + (1 - p0) * p1
        probs = checker.path_probabilities(parse_path("healthy U[0,2] sick"))
        assert probs[0] == pytest.approx(expected, abs=1e-12)

    def test_lower_bound_blocks_early_success(self, checker):
        """U[1,2]: becoming sick during step 1 does not count if the path
        is no longer healthy... more precisely Φ1 must hold at step 0."""
        probs = checker.path_probabilities(parse_path("healthy U[1,2] sick"))
        # From sick: Φ1 = healthy fails at step 0 -> 0.
        assert probs[1] == 0.0
        # From healthy: must be healthy at step 0 (given) and sick at
        # step 1 or (healthy at 1 and sick at 2).
        m0 = np.array([0.7, 0.3])
        m1 = checker.model.step(m0)
        p0 = 0.4 * m0[1]
        p1 = 0.4 * m1[1]
        assert probs[0] == pytest.approx(p0 + (1 - p0) * p1)

    def test_zero_window(self, checker):
        probs = checker.path_probabilities(parse_path("healthy U[0,0] sick"))
        assert probs[0] == 0.0
        assert probs[1] == 1.0

    def test_non_integer_bounds_rejected(self, checker):
        with pytest.raises(UnsupportedFormulaError):
            checker.path_probabilities(parse_path("healthy U[0,1.5] sick"))

    def test_unbounded_rejected(self, checker):
        with pytest.raises(UnsupportedFormulaError):
            checker.path_probabilities(parse_path("healthy U sick"))


class TestUntilAgainstMonteCarlo:
    def test_simulation_agreement(self, checker, model):
        """Sample the inhomogeneous DTMC directly and compare."""
        rng = np.random.default_rng(5)
        matrices = [
            model.local.matrix(checker.occupancy(j)) for j in range(6)
        ]
        hits = 0
        n = 20000
        for _ in range(n):
            state = 0
            satisfied = False
            for j in range(5):
                if state == 1:
                    satisfied = True
                    break
                state = int(rng.random() > matrices[j][state, 0])
            if satisfied or state == 1:
                satisfied = True
            if satisfied:
                hits += 1
        estimate = hits / n
        probs = checker.path_probabilities(parse_path("healthy U[0,5] sick"))
        assert probs[0] == pytest.approx(estimate, abs=0.02)


class TestHomogeneousReduction:
    def test_matches_absorbing_powers(self, homogeneous_checker):
        """Constant matrices: until = absorbing-chain matrix powers."""
        from repro.ctmc.dtmc import make_absorbing_dtmc

        checker = homogeneous_checker
        p = checker.model.local.matrix(np.array([1.0, 0.0, 0.0]))
        mod = make_absorbing_dtmc(p, {2})
        expected = np.linalg.matrix_power(mod, 4)[:, 2]
        probs = checker.path_probabilities(parse_path("tt U[0,4] goal"))
        assert np.allclose(probs, expected, atol=1e-12)


class TestNestedFormulas:
    def test_nested_probability_operand(self, checker):
        """P-thresholded operand inside an until: the inner satisfaction
        set changes per step as infection pressure grows."""
        inner = "P[>0.15](healthy U[0,1] sick)"
        # The inner probability for 'healthy' is 0.4·m1(step); it crosses
        # 0.15 when m1 > 0.375.
        inner_phi = parse_csl(inner)
        sat_now = checker.sat_at(inner_phi, 0)
        assert sat_now == frozenset({1})  # sick state has prob 1
        # After enough steps the healthy state joins.
        later = next(
            step for step in range(40) if 0 in checker.sat_at(inner_phi, step)
        )
        assert later > 0
        assert checker.occupancy(later)[1] > 0.375 - 0.02

        outer = parse_path(f"healthy U[0,30] ({inner})")
        probs = checker.path_probabilities(outer)
        assert 0.0 < probs[0] <= 1.0
        assert probs[1] == 1.0

    def test_steady_state_operator(self, checker):
        # The discrete SIS grows to everyone sick (no recovery pressure
        # can hold it at 0.2 < 0.4 saturation? compute from fixed point).
        phi = parse_csl("S[>0.5](sick)")
        sat = checker.sat_at(phi)
        steady = checker.model.fixed_point(np.array([0.7, 0.3]))
        expected = (
            frozenset({0, 1}) if steady[1] > 0.5 else frozenset()
        )
        assert sat == expected


class TestNextOperator:
    def test_single_step(self, checker):
        probs = checker.path_probabilities(parse_path("X[0,1] sick"))
        assert probs[0] == pytest.approx(0.4 * 0.3)
        # sick stays sick with prob 0.8
        assert probs[1] == pytest.approx(0.8)

    def test_window_excluding_one_is_zero(self, checker):
        probs = checker.path_probabilities(parse_path("X[2,3] sick"))
        assert np.allclose(probs, 0.0)
