"""Edge cases and failure injection across the checking pipeline.

Errors should never pass silently: unbounded operators, out-of-horizon
queries, ill-posed steady states and malformed inputs must surface as
the documented exception types, not as wrong numbers.
"""

import numpy as np
import pytest

from repro.checking import CheckOptions, EvaluationContext, MFModelChecker
from repro.checking.local import LocalChecker
from repro.exceptions import (
    CheckingError,
    FormulaError,
    SteadyStateError,
    UnsupportedFormulaError,
)
from repro.logic.parser import parse_csl, parse_mfcsl, parse_path
from repro.meanfield import MeanFieldModel
from repro.meanfield.local_model import LocalModelBuilder


class TestUnboundedOperators:
    def test_unbounded_until_rejected_locally(self, ctx1):
        checker = LocalChecker(ctx1)
        with pytest.raises(UnsupportedFormulaError):
            checker.path_probabilities(parse_path("not_infected U infected"))

    def test_unbounded_until_rejected_globally(self, virus1, m_example1):
        checker = MFModelChecker(virus1)
        with pytest.raises(UnsupportedFormulaError):
            checker.check("EP[<0.5](not_infected U infected)", m_example1)

    def test_unbounded_next_rejected(self, ctx1):
        checker = LocalChecker(ctx1)
        with pytest.raises(UnsupportedFormulaError):
            checker.path_probabilities(parse_path("X not_infected"))

    def test_unbounded_inside_nested_formula(self, ctx1):
        checker = LocalChecker(ctx1)
        phi = parse_csl("P[>0.5](tt U[0,2] (P[>0.1](tt U infected)))")
        with pytest.raises(UnsupportedFormulaError):
            checker.sat_at(phi)


class TestSteadyStateFailures:
    @pytest.fixture
    def drifting_model(self) -> MeanFieldModel:
        """A model whose flow creeps for a very long time.

        With an explicitly time-growing rate the drift never dies, so
        steady-state operators must fail loudly.
        """
        builder = (
            LocalModelBuilder()
            .state("a", "low")
            .state("b", "high")
            .transition("a", "b", lambda m, t: 1.0 + 0.1 * np.sin(t) ** 2)
            .transition("b", "a", lambda m, t: 1.0 + 0.1 * np.cos(t) ** 2)
        )
        return MeanFieldModel(builder.build())

    def test_es_error_propagates(self, drifting_model):
        checker = MFModelChecker(drifting_model)
        m0 = np.array([1.0, 0.0])
        # The oscillating-rate model never satisfies a tight drift
        # tolerance; the steady-state machinery must raise rather than
        # return a bogus verdict.  (Depending on amplitudes it may settle
        # within tolerance; force failure with a stringent context.)
        ctx = EvaluationContext(drifting_model, m0)
        from repro.meanfield.stationary import stationary_from_long_run

        with pytest.raises(SteadyStateError):
            stationary_from_long_run(
                drifting_model, m0, horizon=1.0, drift_tol=1e-30,
                max_horizon=2.0,
            )

    def test_local_steady_operator_same_failure(self, drifting_model):
        from repro.meanfield.stationary import stationary_from_long_run

        with pytest.raises(SteadyStateError):
            stationary_from_long_run(
                drifting_model,
                np.array([0.5, 0.5]),
                horizon=0.5,
                drift_tol=1e-30,
                max_horizon=1.0,
            )


class TestMalformedQueries:
    def test_non_mfcsl_node_rejected(self, virus1, m_example1):
        checker = MFModelChecker(virus1)
        with pytest.raises(FormulaError):
            checker.check(parse_csl("infected"), m_example1)  # CSL, not MF-CSL

    def test_curve_out_of_range(self, virus1, m_example1):
        checker = MFModelChecker(virus1)
        curve = checker.local_probability_curve(
            "not_infected U[0,1] infected", m_example1, 2.0
        )
        with pytest.raises(CheckingError):
            curve.values(3.0)

    def test_zero_horizon_csat_is_degenerate(self, virus1, m_example1):
        checker = MFModelChecker(virus1)
        result = checker.conditional_sat("tt", m_example1, 0.0)
        assert result.measure() == 0.0
        assert result.contains(0.0)


class TestDegenerateFormulas:
    def test_until_with_point_interval(self, ctx1):
        """U[2,2]: Φ2 must hold exactly at t'=2 after surviving in Φ1."""
        checker = LocalChecker(ctx1)
        probs = checker.path_probabilities(
            parse_path("not_infected U[2,2] infected")
        )
        # The second phase has zero duration: success requires being in a
        # Φ2 state exactly at t=2, which has probability zero for the
        # transformed chain started in a Φ1 state... except via the
        # phase-boundary indicator, which cannot fire since Φ1 ∧ Φ2 = ∅.
        assert np.allclose(probs, 0.0, atol=1e-9)

    def test_until_tt_to_tt(self, ctx1):
        checker = LocalChecker(ctx1)
        probs = checker.path_probabilities(parse_path("tt U[0,1] tt"))
        assert np.allclose(probs, 1.0)

    def test_until_ff_target(self, ctx1):
        checker = LocalChecker(ctx1)
        probs = checker.path_probabilities(parse_path("tt U[0,1] ff"))
        assert np.allclose(probs, 0.0)

    def test_contradictory_expectation(self, virus1, m_example1):
        checker = MFModelChecker(virus1)
        assert not checker.check("E[<0.5](tt) ", m_example1)
        assert checker.check("E[>=1](tt)", m_example1)
        assert checker.check("E[<=0](ff)", m_example1)

    def test_probability_bounds_at_extremes(self, ctx1):
        checker = LocalChecker(ctx1)
        # P[>=0](anything) is every state; P[<0]... cannot be expressed
        # (threshold in [0,1] and strict), so use P[<=1].
        assert checker.sat_at(
            parse_csl("P[>=0](tt U[0,1] infected)")
        ) == frozenset({0, 1, 2})
        assert checker.sat_at(
            parse_csl("P[<=1](tt U[0,1] infected)")
        ) == frozenset({0, 1, 2})


class TestOptionPlumbing:
    def test_until_method_nested_forced_everywhere(self, virus1, m_example1):
        options = CheckOptions(until_method="nested")
        checker = MFModelChecker(virus1, options)
        value = checker.value(
            "EP[<0.5](not_infected U[0,1] infected)", m_example1
        )
        baseline = MFModelChecker(virus1).value(
            "EP[<0.5](not_infected U[0,1] infected)", m_example1
        )
        assert value == pytest.approx(baseline, abs=1e-7)

    def test_recompute_curve_method_globally(self, virus1, m_example1):
        options = CheckOptions(curve_method="recompute", grid_points=33)
        checker = MFModelChecker(virus1, options)
        result = checker.conditional_sat(
            "EP[<0.1](not_infected U[0,1] infected)", m_example1, 10.0
        )
        baseline = MFModelChecker(
            virus1, CheckOptions(grid_points=33)
        ).conditional_sat(
            "EP[<0.1](not_infected U[0,1] infected)", m_example1, 10.0
        )
        assert result.approx_equal(baseline, tol=1e-5)
