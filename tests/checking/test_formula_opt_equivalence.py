"""Every formula-optimization flag combination returns identical answers.

The contract of ``CheckOptions.formula_optimizations`` is that the
optimizations change *what work is performed*, never the verdict: check
results must be equal, leaf expectation values within 1e-9, and
conditional satisfaction sets equal up to crossing-refinement tolerance,
against the eager (``"none"``) configuration.
"""

import numpy as np
import pytest

from repro.checking import CheckOptions, MFModelChecker
from repro.checking.options import OPTIMIZATION_NAMES
from repro.models.virus import SETTING_1, SETTING_2, virus_model

OCC = np.array([0.8, 0.15, 0.05])

# All-on, all-off, and each single flag ablated — the matrix the CI job
# runs on every push.
CONFIGS = (
    ("all", OPTIMIZATION_NAMES),
    ("none", ()),
) + tuple(
    (f"no-{name}", tuple(n for n in OPTIMIZATION_NAMES if n != name))
    for name in OPTIMIZATION_NAMES
)
CONFIG_IDS = [cid for cid, _ in CONFIGS]

# Formulas chosen to force every optimization onto its code path:
# rewrite folds/vacuity, shared duplicate subtrees, lazy cSat windows,
# early-exit-decidable thresholds, nested (time-varying) untils.
CHECK_FORMULAS = [
    "EP[<0.3](not_infected U[0,1] infected)",
    "E[>0.5](not_infected | P[>=0](infected U[0,5] not_infected))",
    "EP[<0.3](not_infected U[0,1] infected) & "
    "EP[<0.3](not_infected U[0,1] infected)",
    "!!(E[>0.1](infected) | !E[<=0.9](active))",
    "E[>0.1](P[>=0.0003](P[>=0.02](not_infected U[0,1] infected)"
    " U[0,4] active))",
    "E[>0.1](P[>=0.999](P[>=0.02](not_infected U[0,1] infected)"
    " U[0,4] active))",
    "ES[<0.9](infected) | EP[>=0.001](not_infected U[0,2] infected)",
]

VALUE_FORMULAS = [
    "EP[<0.3](not_infected U[0,1] infected)",
    "E[>0.5](not_infected | P[>=0.02](not_infected U[0,1] infected))",
    "E[>0.1](P[>=0.1](P[>=0.02](not_infected U[0,1] infected)"
    " U[0,4] active))",
    "ES[<0.9](infected)",
]

CSAT_FORMULAS = [
    ("EP[<0.3](not_infected U[0,1] infected)", 10.0),
    ("E[>0.2](infected) & EP[<0.3](not_infected U[0,1] infected)", 8.0),
    ("!E[>0.2](infected) | EP[>=0.05](not_infected U[0,1] infected)", 8.0),
    ("E[>=0](infected) & ES[<0.9](infected)", 5.0),
]


def _checker(enabled):
    return MFModelChecker(
        virus_model(SETTING_1),
        CheckOptions(formula_optimizations=enabled),
    )


@pytest.fixture(scope="module")
def eager_results():
    """Reference answers computed with every optimization disabled."""
    checker = _checker(())
    checks = {f: checker.check(f, OCC) for f in CHECK_FORMULAS}
    values = {f: checker.value(f, OCC) for f in VALUE_FORMULAS}
    csats = {
        (f, theta): checker.conditional_sat(f, OCC, theta)
        for f, theta in CSAT_FORMULAS
    }
    return checks, values, csats


@pytest.mark.parametrize("cid, enabled", CONFIGS, ids=CONFIG_IDS)
class TestFlagMatrix:
    def test_check_verdicts_identical(self, cid, enabled, eager_results):
        checks, _, _ = eager_results
        checker = _checker(enabled)
        for formula, expected in checks.items():
            assert checker.check(formula, OCC) is expected, (cid, formula)

    def test_leaf_values_within_1e9(self, cid, enabled, eager_results):
        _, values, _ = eager_results
        checker = _checker(enabled)
        for formula, expected in values.items():
            got = checker.value(formula, OCC)
            assert got == pytest.approx(expected, abs=1e-9), (cid, formula)

    def test_csat_sets_equal(self, cid, enabled, eager_results):
        _, _, csats = eager_results
        checker = _checker(enabled)
        for (formula, theta), expected in csats.items():
            got = checker.conditional_sat(formula, OCC, theta)
            assert got.approx_equal(expected, tol=1e-6), (
                cid,
                formula,
                got.intervals,
                expected.intervals,
            )


class TestOptimizationsObservable:
    """The flags actually change the work performed, not just the label."""

    def test_rewrites_counted_and_traced(self):
        checker = _checker(OPTIMIZATION_NAMES)
        ctx = checker.context(OCC)
        checker.check("!!(E[>0.1](infected) & tt)", OCC, ctx=ctx)
        assert ctx.stats.rewrites_applied > 0

    def test_no_rewrites_when_disabled(self):
        checker = _checker(())
        ctx = checker.context(OCC)
        checker.check("!!(E[>0.1](infected) & tt)", OCC, ctx=ctx)
        assert ctx.stats.rewrites_applied == 0

    def test_early_exit_skips_segments(self):
        f = (
            "E[>0.1](P[>=0.0003](P[>=0.02](not_infected U[0,1] infected)"
            " U[0,4] active))"
        )
        on = _checker(OPTIMIZATION_NAMES)
        ctx_on = on.context(OCC)
        on.value(f, OCC, ctx=ctx_on)
        assert ctx_on.stats.early_exits >= 1
        assert ctx_on.stats.segments_skipped >= 1
        off = _checker(())
        ctx_off = off.context(OCC)
        off.value(f, OCC, ctx=ctx_off)
        assert ctx_off.stats.early_exits == 0
        assert ctx_off.stats.segments_skipped == 0

    def test_dedup_shares_leaf_work(self):
        # Different bounds over the same path: fold cannot collapse the
        # conjunction, so the second leaf must find the first leaf's
        # probability curve in the shared checker's memo.
        f = (
            "EP[<0.3](not_infected U[0,1] infected) & "
            "EP[>=0.001](not_infected U[0,1] infected)"
        )
        on = _checker(OPTIMIZATION_NAMES)
        ctx_on = on.context(OCC)
        on.conditional_sat(f, OCC, 6.0, ctx=ctx_on)
        assert ctx_on.stats.formula_memo_hits > 0

    def test_vacuity_avoids_until_solves(self):
        # P>=0 inside an Or that the eager piecewise checker cannot
        # short-circuit: with the rewrite the until is never solved.
        f = "E[>0.5](not_infected | P[>=0](infected U[0,5] not_infected))"
        on = _checker(OPTIMIZATION_NAMES)
        ctx_on = on.context(OCC)
        on.check(f, OCC, ctx=ctx_on)
        off = _checker(())
        ctx_off = off.context(OCC)
        off.check(f, OCC, ctx=ctx_off)
        assert ctx_on.stats.solve_ivp_calls < ctx_off.stats.solve_ivp_calls


class TestSecondSetting:
    """Spot-check the flag matrix on the paper's second parameter set."""

    @pytest.mark.parametrize("enabled", [OPTIMIZATION_NAMES, ()],
                             ids=["all", "none"])
    def test_example_formula(self, enabled):
        checker = MFModelChecker(
            virus_model(SETTING_2),
            CheckOptions(formula_optimizations=enabled),
        )
        v = checker.value("EP[<0.3](not_infected U[0,1] infected)", OCC)
        reference = MFModelChecker(
            virus_model(SETTING_2), CheckOptions(formula_optimizations=())
        ).value("EP[<0.3](not_infected U[0,1] infected)", OCC)
        assert v == pytest.approx(reference, abs=1e-9)


class TestOptionsValidation:
    def test_unknown_name_rejected(self):
        from repro.exceptions import ModelError

        with pytest.raises(ModelError):
            CheckOptions(formula_optimizations=("warp-drive",))

    def test_bare_string_rejected(self):
        from repro.exceptions import ModelError

        with pytest.raises(ModelError):
            CheckOptions(formula_optimizations="fold")

    def test_normalization(self):
        opts = CheckOptions(
            formula_optimizations=("vacuity", "fold", "vacuity")
        )
        assert opts.formula_optimizations == ("fold", "vacuity")
        assert CheckOptions(
            formula_optimizations="all"
        ).formula_optimizations == tuple(sorted(OPTIMIZATION_NAMES))
        assert CheckOptions(
            formula_optimizations="none"
        ).formula_optimizations == ()
