"""Tests for the MF-CSL checker (Section V-A)."""

import numpy as np
import pytest

from repro.checking import CheckOptions, MFModelChecker
from repro.exceptions import FormulaError, InvalidOccupancyError
from repro.logic.parser import parse_mfcsl


@pytest.fixture
def checker(virus1) -> MFModelChecker:
    return MFModelChecker(virus1)


class TestBooleanLayer:
    def test_tt_always_holds(self, checker, m_example1):
        assert checker.check("tt", m_example1)

    def test_negation(self, checker, m_example1):
        assert not checker.check("!tt", m_example1)
        assert checker.check("!!tt", m_example1)

    def test_conjunction_and_disjunction(self, checker, m_example1):
        assert checker.check("tt & tt", m_example1)
        assert not checker.check("tt & ff", m_example1)
        assert checker.check("tt | ff", m_example1)
        assert not checker.check("ff | ff", m_example1)

    def test_ast_input_accepted(self, checker, m_example1):
        formula = parse_mfcsl("E[>0.5](not_infected)")
        assert checker.check(formula, m_example1)


class TestExpectationOperator:
    def test_fraction_of_label(self, checker, m_example1):
        # m = (0.8, 0.15, 0.05): infected fraction 0.2.
        assert checker.check("E[>0.1](infected)", m_example1)
        assert not checker.check("E[>0.3](infected)", m_example1)
        assert checker.check("E[<=0.2](infected)", m_example1)

    def test_value(self, checker, m_example1):
        assert checker.value("E[>0](infected)", m_example1) == pytest.approx(0.2)
        assert checker.value("E[>0](active)", m_example1) == pytest.approx(0.05)

    def test_paper_showcase_formula_1(self, checker):
        """E_{>0.8}(infected): the system counts as infected."""
        badly_infected = np.array([0.1, 0.5, 0.4])
        assert checker.check("E[>0.8](infected)", badly_infected)
        assert not checker.check("E[>0.8](infected)", np.array([0.3, 0.4, 0.3]))

    def test_nested_probability_inside_expectation(self, checker, m_example1):
        # Every infected state satisfies the until with probability one.
        psi = "E[>=0.2](P[>0.99](tt U[0,1] infected))"
        assert checker.check(psi, m_example1)


class TestExpectedProbabilityOperator:
    def test_paper_example_1_standard(self, checker, m_example1):
        psi = "EP[<0.3](not_infected U[0,1] infected)"
        assert checker.check(psi, m_example1)
        value = checker.value(psi, m_example1)
        # standard semantics: infected states contribute their mass
        assert value == pytest.approx(0.2339, abs=2e-3)

    def test_paper_example_1_phi1_convention(self, virus1, m_example1):
        paper = MFModelChecker(
            virus1, CheckOptions(start_convention="phi1")
        )
        value = paper.value(
            "EP[<0.3](not_infected U[0,1] infected)", m_example1
        )
        # 0.8 * Prob(s1) with Prob(s1) ≈ 0.042 under the printed Table II.
        assert value == pytest.approx(0.8 * 0.04236, abs=2e-3)

    def test_ep_with_next(self, checker, m_example1):
        assert checker.check("EP[<0.9](X[0,1] infected)", m_example1)


class TestExpectedSteadyStateOperator:
    def test_setting1_virus_dies(self, checker, m_example1):
        """The paper's showcase ES_{>=0.1}(infected) is FALSE in Setting 1
        because the fluid limit converges to everyone clean."""
        assert not checker.check("ES[>=0.1](infected)", m_example1)
        assert checker.check("ES[>=0.99](not_infected)", m_example1)

    def test_value_independent_of_occupancy(self, checker):
        v1 = checker.value("ES[>0](not_infected)", np.array([0.8, 0.15, 0.05]))
        v2 = checker.value("ES[>0](not_infected)", np.array([0.3, 0.3, 0.4]))
        assert v1 == pytest.approx(v2, abs=1e-5)


class TestDiagnostics:
    def test_value_rejects_compound_formula(self, checker, m_example1):
        with pytest.raises(FormulaError):
            checker.value("tt & E[>0](infected)", m_example1)

    def test_explain_lists_leaves(self, checker, m_example1):
        report = checker.explain(
            "E[>0.8](infected) & !EP[<0.3](not_infected U[0,1] infected)",
            m_example1,
        )
        assert len(report) == 2
        texts = [row[0] for row in report]
        assert any("E[>0.8]" in t for t in texts)
        assert report[0][1] == pytest.approx(0.2)  # infected fraction
        assert report[0][2] is False

    def test_invalid_occupancy_rejected(self, checker):
        with pytest.raises(InvalidOccupancyError):
            checker.check("tt", np.array([0.5, 0.2, 0.1]))


class TestCurves:
    def test_expected_probability_curve(self, checker, m_example1):
        g = checker.expected_probability_curve(
            "not_infected U[0,1] infected", m_example1, theta=10.0
        )
        assert g(0.0) == pytest.approx(0.2339, abs=2e-3)
        # Setting 1 decays: infected mass shrinks, curve decreases.
        assert g(10.0) < g(0.0)

    def test_expectation_curve(self, checker, m_example1):
        g = checker.expectation_curve("infected", m_example1, theta=10.0)
        assert g(0.0) == pytest.approx(0.2)
        assert g(10.0) < 0.2

    def test_local_probability_curve(self, checker, m_example1):
        curve = checker.local_probability_curve(
            "not_infected U[0,1] infected", m_example1, theta=5.0
        )
        assert curve.value(0.0, 0) == pytest.approx(0.0424, abs=2e-3)
