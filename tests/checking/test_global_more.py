"""Additional MF-CSL checker coverage: boolean layers, context reuse,
curve consistency, and cross-model sanity checks."""

import numpy as np
import pytest

from repro.checking import CheckOptions, MFModelChecker
from repro.models.epidemic import SisParameters, sis_model
from repro.models.gossip import gossip_model


class TestBooleanCompleteness:
    @pytest.fixture
    def checker(self, virus1):
        return MFModelChecker(virus1)

    def test_or_short_circuit_semantics(self, checker, m_example1):
        assert checker.check("E[>0.9](infected) | E[>0.1](infected)", m_example1)
        assert not checker.check(
            "E[>0.9](infected) | E[>0.9](not_infected) & ff", m_example1
        )

    def test_de_morgan_on_verdicts(self, checker, m_example1):
        a = "E[>0.1](infected)"
        b = "E[>0.1](active)"
        lhs = checker.check(f"!({a} & {b})", m_example1)
        rhs = checker.check(f"!({a}) | !({b})", m_example1)
        assert lhs == rhs

    def test_context_reuse(self, checker, m_example1):
        ctx = checker.context(m_example1)
        first = checker.check("E[>0.1](infected)", m_example1, ctx=ctx)
        second = checker.check("EP[<0.5](not_infected U[0,1] infected)",
                               m_example1, ctx=ctx)
        assert first and second


class TestCurveConsistency:
    def test_expectation_curve_matches_check_at_zero(self, virus1, m_example1):
        checker = MFModelChecker(virus1)
        g = checker.expectation_curve("infected", m_example1, theta=5.0)
        assert g(0.0) == pytest.approx(
            checker.value("E[>0](infected)", m_example1)
        )

    def test_ep_curve_matches_value_at_zero(self, virus1, m_example1):
        checker = MFModelChecker(virus1)
        g = checker.expected_probability_curve(
            "not_infected U[0,1] infected", m_example1, theta=5.0
        )
        assert g(0.0) == pytest.approx(
            checker.value(
                "EP[<1](not_infected U[0,1] infected)", m_example1
            ),
            abs=1e-8,
        )

    def test_csat_consistent_with_pointwise_checks(self, virus1, m_example1):
        """Membership of t in cSat must agree with re-checking at m̄(t)."""
        checker = MFModelChecker(virus1)
        psi = "E[>=0.15](infected)"
        csat = checker.conditional_sat(psi, m_example1, 20.0)
        traj = virus1.trajectory(m_example1, horizon=20.0)
        for t in (0.0, 3.0, 10.0, 19.0):
            pointwise = checker.check(psi, traj(t))
            assert csat.contains(t, tol=1e-6) == pointwise, f"t={t}"


class TestAcrossModels:
    def test_sis_threshold_story(self):
        sub = MFModelChecker(sis_model(SisParameters(beta=0.5, gamma=1.0)))
        sup = MFModelChecker(sis_model(SisParameters(beta=3.0, gamma=1.0)))
        m0 = np.array([0.7, 0.3])
        # Below threshold the infection dies in steady state; above it
        # persists at 1 - 1/R0 = 2/3.
        assert sub.check("ES[<0.01](infected)", m0)
        assert sup.check("ES[>0.6](infected)", m0)
        assert sup.check("ES[<0.7](infected)", m0)

    def test_gossip_epidemic_of_information(self):
        checker = MFModelChecker(gossip_model())
        m0 = np.array([0.9, 0.1, 0.0])
        # A random ignorant node eventually (within 10 units) hears the
        # rumour with substantial probability.
        value = checker.value(
            "EP[<1](ignorant U[0,10] informed)", m0
        )
        assert value > 0.5

    def test_phi1_convention_is_never_larger(self, virus1, m_example1):
        """The Φ1-start convention can only remove probability mass."""
        standard = MFModelChecker(virus1)
        phi1 = MFModelChecker(
            virus1, CheckOptions(start_convention="phi1")
        )
        for formula in (
            "EP[<1](not_infected U[0,1] infected)",
            "EP[<1](infected U[0,5] not_infected)",
            "EP[<1](tt U[0,2] active)",
        ):
            assert phi1.value(formula, m_example1) <= standard.value(
                formula, m_example1
            ) + 1e-9
