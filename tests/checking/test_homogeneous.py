"""Tests for the classical (Baier et al.) homogeneous CSL checker."""

import numpy as np
import pytest

from repro.checking.homogeneous import HomogeneousChecker
from repro.ctmc.generator import build_generator
from repro.exceptions import FormulaError, InvalidStateError, UnsupportedFormulaError
from repro.logic.parser import parse_csl, parse_path


@pytest.fixture
def checker() -> HomogeneousChecker:
    """Irreducible 3-state chain: a <-> b <-> c (+ c -> a)."""
    q = build_generator(
        3,
        {(0, 1): 1.2, (1, 0): 0.4, (1, 2): 0.7, (2, 1): 0.2, (2, 0): 0.1},
    )
    labels = {
        0: frozenset({"low"}),
        1: frozenset({"mid"}),
        2: frozenset({"high", "goal"}),
    }
    return HomogeneousChecker(q, labels)


@pytest.fixture
def absorbing_checker() -> HomogeneousChecker:
    """Chain with two absorbing states (two BSCCs)."""
    q = build_generator(4, {(0, 1): 1.0, (0, 2): 1.0, (1, 3): 0.5})
    labels = {2: frozenset({"sink_a"}), 3: frozenset({"sink_b"})}
    return HomogeneousChecker(q, labels)


class TestStateFormulas:
    def test_boolean_layer(self, checker):
        assert checker.sat(parse_csl("tt")) == frozenset({0, 1, 2})
        assert checker.sat(parse_csl("low | high")) == frozenset({0, 2})
        assert checker.sat(parse_csl("!mid")) == frozenset({0, 2})
        assert checker.sat(parse_csl("high & goal")) == frozenset({2})

    def test_check_single_state(self, checker):
        assert checker.check(parse_csl("low"), 0)
        assert not checker.check(parse_csl("low"), 1)
        with pytest.raises(InvalidStateError):
            checker.check(parse_csl("tt"), 5)

    def test_rejects_path_formula(self, checker):
        with pytest.raises(FormulaError):
            checker.sat(parse_path("a U[0,1] b"))


class TestUntil:
    def test_probability_in_unit_interval(self, checker):
        probs = checker.path_probabilities(parse_path("tt U[0,2] goal"))
        assert np.all(probs >= 0) and np.all(probs <= 1)
        assert probs[2] == pytest.approx(1.0)
        assert 0 < probs[0] < 1

    def test_monotone_in_horizon(self, checker):
        p1 = checker.path_probabilities(parse_path("tt U[0,1] goal"))[0]
        p2 = checker.path_probabilities(parse_path("tt U[0,5] goal"))[0]
        assert p2 > p1

    def test_interval_lower_bound(self, checker):
        whole = checker.path_probabilities(parse_path("low U[0,2] mid"))[0]
        late = checker.path_probabilities(parse_path("low U[1,2] mid"))[0]
        assert late < whole

    def test_unbounded_until_reaches_goal_almost_surely(self, checker):
        # Irreducible chain: the goal is reached eventually with prob 1.
        probs = checker.path_probabilities(parse_path("tt U goal"))
        assert np.allclose(probs, 1.0, atol=1e-9)

    def test_unbounded_until_with_constraint(self, absorbing_checker):
        # From 0: reach sink_a avoiding sink_b: only the direct jump counts.
        probs = absorbing_checker.path_probabilities(
            parse_path("!sink_b U sink_a")
        )
        assert probs[2] == 1.0
        assert probs[3] == 0.0
        assert probs[0] == pytest.approx(0.5)  # two equal-rate exits
        assert probs[1] == 0.0  # state 1 can only go to sink_b

    def test_unbounded_with_lower_bound_rejected(self, checker):
        with pytest.raises(UnsupportedFormulaError):
            checker.path_probabilities(parse_path("tt U[1,inf] goal"))


class TestNext:
    def test_closed_form(self, checker):
        probs = checker.path_probabilities(parse_path("X[0,1] mid"))
        # State 0 has a single outgoing transition 0 -> 1 at rate 1.2.
        expected0 = 1 - np.exp(-1.2)
        assert probs[0] == pytest.approx(expected0, abs=1e-12)
        # State 1 jumps to mid never (its targets are 0 and 2).
        assert probs[1] == 0.0
        # State 2 jumps to mid with rate 0.2 out of 0.3 total.
        expected2 = (1 - np.exp(-0.3)) * 0.2 / 0.3
        assert probs[2] == pytest.approx(expected2, abs=1e-12)

    def test_unbounded_next(self, checker):
        probs = checker.path_probabilities(parse_path("X mid"))
        assert probs[0] == pytest.approx(1.0)  # only exit goes to mid
        assert probs[2] == pytest.approx(0.2 / 0.3)

    def test_absorbing_state_never_jumps(self, absorbing_checker):
        probs = absorbing_checker.path_probabilities(parse_path("X tt"))
        assert probs[2] == 0.0
        assert probs[3] == 0.0


class TestSteadyState:
    def test_irreducible_chain_same_for_all_states(self, checker):
        sat = checker.sat(parse_csl("S[>0.1](goal)"))
        assert sat in (frozenset(), frozenset({0, 1, 2}))
        values = checker.steady_state_probabilities(frozenset({2}))
        assert np.allclose(values, values[0])

    def test_bsccs_identified(self, absorbing_checker):
        comps = absorbing_checker.bsccs()
        assert frozenset({2}) in comps
        assert frozenset({3}) in comps
        assert len(comps) == 2

    def test_absorption_probabilities(self, absorbing_checker):
        absorb = absorbing_checker.absorption_probabilities()
        assert absorb.shape == (4, 2)
        assert np.allclose(absorb.sum(axis=1), 1.0)
        # From state 0: 50/50 between (via 1 -> 3) and direct 2.
        comps = absorbing_checker.bsccs()
        idx_2 = comps.index(frozenset({2}))
        idx_3 = comps.index(frozenset({3}))
        assert absorb[0, idx_2] == pytest.approx(0.5)
        assert absorb[0, idx_3] == pytest.approx(0.5)

    def test_steady_state_depends_on_start_in_reducible_chain(
        self, absorbing_checker
    ):
        values = absorbing_checker.steady_state_probabilities(frozenset({2}))
        assert values[2] == 1.0
        assert values[3] == 0.0
        assert values[0] == pytest.approx(0.5)

    def test_steady_operator_per_state(self, absorbing_checker):
        sat = absorbing_checker.sat(parse_csl("S[>=0.99](sink_a)"))
        assert sat == frozenset({2})

    def test_nested_steady_state(self, checker):
        # S over a P formula: exercised end to end.
        sat = checker.sat(parse_csl("S[>0](P[>0.5](tt U[0,10] goal))"))
        assert sat in (frozenset(), frozenset({0, 1, 2}))
