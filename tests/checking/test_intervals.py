"""Tests for the IntervalSet algebra."""

import pytest

from repro.checking.intervals import IntervalSet, from_indicator_grid
from repro.exceptions import ModelError


class TestConstruction:
    def test_empty(self):
        assert IntervalSet.empty().is_empty
        assert IntervalSet.empty().measure() == 0.0

    def test_whole(self):
        s = IntervalSet.whole(5.0)
        assert s.intervals == ((0.0, 5.0),)
        assert s.measure() == 5.0

    def test_point(self):
        s = IntervalSet.point(2.0)
        assert s.contains(2.0)
        assert s.measure() == 0.0

    def test_merging_overlaps(self):
        s = IntervalSet([(0, 2), (1, 3), (5, 6)])
        assert s.intervals == ((0.0, 3.0), (5.0, 6.0))

    def test_merging_touching(self):
        s = IntervalSet([(0, 1), (1, 2)])
        assert s.intervals == ((0.0, 2.0),)

    def test_sorting(self):
        s = IntervalSet([(5, 6), (0, 1)])
        assert s.intervals == ((0.0, 1.0), (5.0, 6.0))

    def test_rejects_reversed(self):
        with pytest.raises(ModelError):
            IntervalSet([(2.0, 1.0)])


class TestQueries:
    def test_contains(self):
        s = IntervalSet([(1, 2), (4, 5)])
        assert 1.5 in s
        assert 1.0 in s  # closed endpoints
        assert 3.0 not in s
        assert s.contains(2.0000001, tol=1e-3)

    def test_equality_and_hash(self):
        a = IntervalSet([(0, 1), (2, 3)])
        b = IntervalSet([(2, 3), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != IntervalSet([(0, 1)])

    def test_approx_equal(self):
        a = IntervalSet([(0, 1.0)])
        b = IntervalSet([(1e-8, 1.0 - 1e-8)])
        assert a.approx_equal(b, tol=1e-6)
        assert not a.approx_equal(IntervalSet([(0, 0.5)]), tol=1e-6)
        assert not a.approx_equal(IntervalSet.empty(), tol=1e-6)


class TestAlgebra:
    def test_union(self):
        a = IntervalSet([(0, 1)])
        b = IntervalSet([(0.5, 2)])
        assert a.union(b).intervals == ((0.0, 2.0),)

    def test_intersection(self):
        a = IntervalSet([(0, 2), (3, 5)])
        b = IntervalSet([(1, 4)])
        assert a.intersection(b).intervals == ((1.0, 2.0), (3.0, 4.0))

    def test_intersection_disjoint(self):
        a = IntervalSet([(0, 1)])
        b = IntervalSet([(2, 3)])
        assert a.intersection(b).is_empty

    def test_complement(self):
        s = IntervalSet([(1, 2), (4, 5)])
        c = s.complement(6.0)
        assert c.intervals == ((0.0, 1.0), (2.0, 4.0), (5.0, 6.0))

    def test_complement_of_empty_is_whole(self):
        assert IntervalSet.empty().complement(3.0) == IntervalSet.whole(3.0)

    def test_complement_of_whole_is_empty(self):
        assert IntervalSet.whole(3.0).complement(3.0).measure() == pytest.approx(0.0)

    def test_double_complement_preserves_measure(self):
        s = IntervalSet([(0.5, 1.5), (2.0, 2.5)])
        back = s.complement(4.0).complement(4.0)
        assert back.approx_equal(s, tol=1e-9)

    def test_de_morgan(self):
        theta = 10.0
        a = IntervalSet([(1, 4)])
        b = IntervalSet([(3, 7)])
        lhs = a.intersection(b).complement(theta)
        rhs = a.complement(theta).union(b.complement(theta))
        assert lhs.approx_equal(rhs, tol=1e-9)

    def test_difference(self):
        a = IntervalSet([(0, 5)])
        b = IntervalSet([(1, 2)])
        d = a.difference(b, theta=5.0)
        assert d.intervals == ((0.0, 1.0), (2.0, 5.0))

    def test_clip(self):
        s = IntervalSet([(0, 10)])
        assert s.clip(2, 3).intervals == ((2.0, 3.0),)

    def test_shift(self):
        s = IntervalSet([(1, 2)])
        assert s.shift(0.5).intervals == ((1.5, 2.5),)


class TestIndicatorGrid:
    def test_simple_runs(self):
        times = [0, 1, 2, 3, 4, 5]
        truth = [True, True, False, False, True, True]
        s = from_indicator_grid(times, truth)
        assert s.intervals == ((0.0, 1.0), (4.0, 5.0))

    def test_all_false(self):
        assert from_indicator_grid([0, 1], [False, False]).is_empty

    def test_all_true(self):
        assert from_indicator_grid([0, 1, 2], [True] * 3).intervals == ((0.0, 2.0),)

    def test_mismatched_lengths(self):
        with pytest.raises(ModelError):
            from_indicator_grid([0, 1], [True])

    def test_repr(self):
        assert "IntervalSet" in repr(IntervalSet([(0, 1)]))
        assert "empty" in repr(IntervalSet.empty())
