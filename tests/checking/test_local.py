"""Tests for the recursive local CSL checker (Section IV)."""

import numpy as np
import pytest

from repro.checking.context import EvaluationContext
from repro.checking.local import LocalChecker
from repro.checking.options import CheckOptions
from repro.exceptions import FormulaError, InvalidStateError
from repro.logic.parser import parse_csl, parse_path


@pytest.fixture
def checker(ctx1) -> LocalChecker:
    return LocalChecker(ctx1)


class TestBooleanLayer:
    def test_tt(self, checker):
        assert checker.sat_at(parse_csl("tt")) == frozenset({0, 1, 2})

    def test_atomic(self, checker):
        assert checker.sat_at(parse_csl("infected")) == frozenset({1, 2})
        assert checker.sat_at(parse_csl("not_infected")) == frozenset({0})
        assert checker.sat_at(parse_csl("active")) == frozenset({2})

    def test_unknown_label_empty(self, checker):
        assert checker.sat_at(parse_csl("nonexistent")) == frozenset()

    def test_negation(self, checker):
        assert checker.sat_at(parse_csl("!infected")) == frozenset({0})

    def test_conjunction(self, checker):
        assert checker.sat_at(parse_csl("infected & active")) == frozenset({2})

    def test_disjunction(self, checker):
        sat = checker.sat_at(parse_csl("not_infected | active"))
        assert sat == frozenset({0, 2})

    def test_check_by_name_and_index(self, checker):
        assert checker.check(parse_csl("infected"), "s2")
        assert checker.check(parse_csl("infected"), 1)
        assert not checker.check(parse_csl("infected"), "s1")

    def test_bad_state_rejected(self, checker):
        with pytest.raises(InvalidStateError):
            checker.check(parse_csl("tt"), 17)

    def test_non_state_formula_rejected(self, checker):
        with pytest.raises(FormulaError):
            checker.sat_at(parse_path("a U[0,1] b"))


class TestProbabilityOperator:
    def test_threshold_splits_states(self, checker):
        # From s1 the infection probability within 1 unit is ~0.042;
        # infected states satisfy the until trivially (prob 1).
        phi = parse_csl("P[>0.5](not_infected U[0,1] infected)")
        assert checker.sat_at(phi) == frozenset({1, 2})
        phi_low = parse_csl("P[>0.01](not_infected U[0,1] infected)")
        assert checker.sat_at(phi_low) == frozenset({0, 1, 2})

    def test_path_probabilities_values(self, checker):
        probs = checker.path_probabilities(
            parse_path("not_infected U[0,1] infected")
        )
        assert probs[0] == pytest.approx(0.0424, abs=2e-3)
        assert probs[1] == pytest.approx(1.0)

    def test_next_operator(self, checker):
        probs = checker.path_probabilities(parse_path("X[0,1] infected"))
        assert 0 < probs[0] < 0.1  # s1 jumps only into infected states
        assert probs[1] > 0  # s2 can jump to s3 (infected)

    def test_sat_at_later_time(self, checker):
        """Setting 1 decays, so thresholds flip as time advances."""
        phi = parse_csl("P[>0.02](not_infected U[0,1] infected)")
        assert 0 in checker.sat_at(phi, 0.0)
        assert 0 not in checker.sat_at(phi, 10.0)


class TestSatPiecewise:
    def test_time_independent_formula_constant(self, checker):
        sat = checker.sat_piecewise(parse_csl("infected & !active"), 10.0)
        assert sat.is_constant
        assert sat.at(5.0) == frozenset({1})

    def test_probability_formula_switches(self, checker):
        phi = parse_csl("P[>0.02](not_infected U[0,1] infected)")
        sat = checker.sat_piecewise(phi, 15.0)
        assert not sat.is_constant
        assert 0 in sat.at(0.0)
        assert 0 not in sat.at(14.0)
        # boundary is where the probability crosses 0.02
        boundary = sat.boundaries()[0]
        curve = checker.path_curve(
            parse_path("not_infected U[0,1] infected"), 15.0
        )
        assert curve.value(boundary, 0) == pytest.approx(0.02, abs=1e-6)

    def test_caching_returns_same_object(self, checker):
        phi = parse_csl("P[>0.02](not_infected U[0,1] infected)")
        first = checker.sat_piecewise(phi, 15.0)
        second = checker.sat_piecewise(phi, 15.0)
        assert first is second

    def test_boolean_combination_of_timed_sets(self, checker):
        phi = parse_csl(
            "!P[>0.02](not_infected U[0,1] infected) & not_infected"
        )
        sat = checker.sat_piecewise(phi, 15.0)
        assert 0 not in sat.at(0.0)
        assert 0 in sat.at(14.0)


class TestSteadyStateOperator:
    def test_all_or_nothing(self, checker):
        # Setting 1 converges to everyone clean.
        assert checker.sat_at(parse_csl("S[>0.9](not_infected)")) == frozenset(
            {0, 1, 2}
        )
        assert checker.sat_at(parse_csl("S[>0.1](infected)")) == frozenset()

    def test_constant_in_time(self, checker):
        sat = checker.sat_piecewise(parse_csl("S[>0.9](not_infected)"), 5.0)
        assert sat.is_constant


class TestNestedFormulas:
    def test_nested_until_through_parser(self, ctx2):
        checker = LocalChecker(ctx2)
        phi = parse_csl(
            "P[>0.9](infected U[0,15] (P[>0.8](tt U[0,0.5] infected)))"
        )
        sat = checker.sat_at(phi)
        # Under the printed Setting 2 the inner threshold never crosses,
        # so the nested until reduces to infected U[0,15] infected:
        # satisfied (probability 1) exactly by the infected states.
        assert sat == frozenset({1, 2})

    def test_until_method_forcing(self, virus1, m_example1):
        simple_ctx = EvaluationContext(
            virus1, m_example1, CheckOptions(until_method="simple")
        )
        nested_ctx = EvaluationContext(
            virus1, m_example1, CheckOptions(until_method="nested")
        )
        path = parse_path("not_infected U[0,1] infected")
        p_simple = LocalChecker(simple_ctx).path_probabilities(path)
        p_nested = LocalChecker(nested_ctx).path_probabilities(path)
        assert np.allclose(p_simple, p_nested, atol=1e-7)
