"""Tests for time-varying-set reachability (Section IV-C / Appendix)."""

import numpy as np
import pytest

from repro.checking.context import EvaluationContext
from repro.checking.nested import TimeVaryingUntil
from repro.checking.reachability import until_probabilities_simple
from repro.checking.satsets import Piece, PiecewiseSatSet
from repro.exceptions import CheckingError
from repro.logic.ast import TimeInterval

NOT_INFECTED = frozenset({0})
INFECTED = frozenset({1, 2})
ALL = frozenset({0, 1, 2})


def constant_sets(theta, upper):
    g1 = PiecewiseSatSet.constant(NOT_INFECTED, 0.0, theta + upper)
    g2 = PiecewiseSatSet.constant(INFECTED, 0.0, theta + upper)
    return g1, g2


class TestAgainstSimpleAlgorithm:
    """With constant sets the nested machinery must equal Equation (4)."""

    def test_probabilities_match_simple(self, ctx1):
        g1, g2 = constant_sets(0.0, 1.0)
        solver = TimeVaryingUntil(ctx1, g1, g2, TimeInterval(0, 1))
        nested = solver.probabilities(0.0)
        simple = until_probabilities_simple(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0, 1)
        )
        assert np.allclose(nested, simple, atol=1e-7)

    def test_positive_lower_bound_matches_simple(self, ctx1):
        theta, interval = 0.0, TimeInterval(0.5, 2.0)
        g1 = PiecewiseSatSet.constant(NOT_INFECTED, 0.0, 2.0)
        g2 = PiecewiseSatSet.constant(INFECTED, 0.0, 2.0)
        solver = TimeVaryingUntil(ctx1, g1, g2, interval, theta=theta)
        nested = solver.probabilities(0.0)
        simple = until_probabilities_simple(
            ctx1, NOT_INFECTED, INFECTED, interval
        )
        assert np.allclose(nested, simple, atol=1e-7)

    def test_later_evaluation_matches_simple(self, ctx1):
        theta, interval = 3.0, TimeInterval(0, 1)
        g1 = PiecewiseSatSet.constant(NOT_INFECTED, 0.0, theta + 1.0)
        g2 = PiecewiseSatSet.constant(INFECTED, 0.0, theta + 1.0)
        solver = TimeVaryingUntil(ctx1, g1, g2, interval, theta=theta)
        assert np.allclose(
            solver.probabilities(3.0),
            until_probabilities_simple(
                ctx1, NOT_INFECTED, INFECTED, interval, t=3.0
            ),
            atol=1e-6,
        )


class TestTimeVaryingSets:
    @pytest.fixture
    def solver(self, ctx2):
        """The paper's Example 2 set-up: Γ2 grows at T1 = 10.443."""
        g2 = PiecewiseSatSet(
            [
                Piece(0.0, 10.443, INFECTED),
                Piece(10.443, 15.0, ALL),
            ]
        )
        g1 = PiecewiseSatSet.constant(INFECTED, 0.0, 15.0)
        return TimeVaryingUntil(ctx2, g1, g2, TimeInterval(0, 15))

    def test_events_detected(self, solver):
        assert solver._events_in(0.0, 15.0) == [10.443]

    def test_paper_example_2_probabilities(self, solver, m_example2):
        """Prob = (0, 1, 1) and the E-value 0.15 (paper, Section VI)."""
        probs = solver.probabilities(0.0)
        assert probs[0] == pytest.approx(0.0, abs=1e-9)
        assert probs[1] == pytest.approx(1.0)
        assert probs[2] == pytest.approx(1.0)
        assert m_example2 @ probs == pytest.approx(0.15, abs=1e-9)

    def test_paper_literal_upsilon(self, solver):
        """The literal construction reproduces Υ_{s1,s*} ≈ 0.47."""
        ups = solver.upsilon_literal(0.0, 15.0)
        assert ups[0, 3] == pytest.approx(0.4698, abs=2e-3)

    def test_corrected_upsilon_zeroes_dead_paths(self, solver):
        ups = solver.upsilon(0.0, 15.0)
        # s1 is a fail state throughout phase 1 -> no live mass reaches s*.
        assert ups[0, 3] == pytest.approx(0.0, abs=1e-12)

    def test_upsilon_identity_for_empty_window(self, solver):
        assert np.allclose(solver.upsilon(3.0, 3.0), np.eye(4))

    def test_upsilon_rejects_reversed_window(self, solver):
        with pytest.raises(CheckingError):
            solver.upsilon(5.0, 3.0)


class TestSurvival:
    def test_constant_live_set(self, ctx1):
        g1 = PiecewiseSatSet.constant(NOT_INFECTED, 0.0, 5.0)
        g2 = PiecewiseSatSet.constant(frozenset(), 0.0, 5.0)
        solver = TimeVaryingUntil(ctx1, g1, g2, TimeInterval(0, 5))
        surv = solver.survival(0.0, 2.0)
        # Only the live state's column can be non-zero.
        assert np.all(surv[:, 1] == 0.0)
        assert np.all(surv[:, 2] == 0.0)
        assert 0.0 < surv[0, 0] < 1.0

    def test_shrinking_live_set_kills_mass(self, ctx1):
        g1 = PiecewiseSatSet(
            [
                Piece(0.0, 1.0, ALL),
                Piece(1.0, 5.0, INFECTED),
            ]
        )
        g2 = PiecewiseSatSet.constant(frozenset(), 0.0, 5.0)
        solver = TimeVaryingUntil(ctx1, g1, g2, TimeInterval(0, 5))
        surv = solver.survival(0.0, 2.0)
        # Mass that was still in s1 at the boundary is lost.
        row_sums = surv.sum(axis=1)
        assert row_sums[0] < 1.0

    def test_zero_duration_is_live_projection(self, ctx1):
        g1 = PiecewiseSatSet.constant(NOT_INFECTED, 0.0, 5.0)
        g2 = PiecewiseSatSet.constant(frozenset(), 0.0, 5.0)
        solver = TimeVaryingUntil(ctx1, g1, g2, TimeInterval(0, 5))
        surv = solver.survival(2.0, 2.0)
        assert surv[0, 0] == 1.0
        assert surv[1, 1] == 0.0


class TestCurve:
    def test_propagate_matches_recompute(self, ctx2):
        g2 = PiecewiseSatSet(
            [Piece(0.0, 13.0, INFECTED), Piece(13.0, 18.0, ALL)]
        )
        g1 = PiecewiseSatSet.constant(INFECTED, 0.0, 18.0)
        solver = TimeVaryingUntil(
            ctx2, g1, g2, TimeInterval(0, 15), theta=3.0
        )
        fast = solver.curve(method="propagate")
        slow = solver.curve(method="recompute")
        for t in (0.0, 1.0, 2.5, 3.0):
            assert np.allclose(
                fast.values(t), slow.values(t), atol=1e-5
            ), f"t={t}"

    def test_curve_discontinuities_exposed(self, ctx2):
        g2 = PiecewiseSatSet(
            [Piece(0.0, 5.0, INFECTED), Piece(5.0, 16.0, ALL)]
        )
        g1 = PiecewiseSatSet.constant(INFECTED, 0.0, 16.0)
        solver = TimeVaryingUntil(
            ctx2, g1, g2, TimeInterval(0, 10), theta=6.0
        )
        curve = solver.curve(method="recompute")
        assert any(abs(d - 5.0) < 1e-9 for d in curve.discontinuities)

    def test_sets_must_cover_needed_window(self, ctx1):
        g1 = PiecewiseSatSet.constant(NOT_INFECTED, 0.0, 2.0)
        g2 = PiecewiseSatSet.constant(INFECTED, 0.0, 2.0)
        with pytest.raises(CheckingError):
            TimeVaryingUntil(ctx1, g1, g2, TimeInterval(0, 5), theta=0.0)
