"""Tests for the timed next operator."""

import numpy as np
import pytest

from repro.checking.next_op import next_curve, next_probabilities
from repro.checking.satsets import Piece, PiecewiseSatSet
from repro.exceptions import UnsupportedFormulaError
from repro.logic.ast import TimeInterval


class TestNextProbabilities:
    def test_homogeneous_closed_form(self, homogeneous_model):
        """Constant rates: P(s, X^[a,b] Φ) has an elementary closed form."""
        from repro.checking.context import EvaluationContext

        ctx = EvaluationContext(
            homogeneous_model, np.array([0.4, 0.3, 0.3])
        )
        q = homogeneous_model.local.constant_generator()
        sat = PiecewiseSatSet.constant(frozenset({2}), 0.0, 10.0)
        a, b = 0.2, 1.5
        probs = next_probabilities(ctx, sat, TimeInterval(a, b))
        for s in range(3):
            exit_rate = -q[s, s]
            jump_rate_into_target = q[s, 2] if s != 2 else 0.0
            if exit_rate == 0:
                expected = 0.0
            else:
                expected = (
                    (np.exp(-exit_rate * a) - np.exp(-exit_rate * b))
                    * jump_rate_into_target
                    / exit_rate
                )
            assert probs[s] == pytest.approx(expected, abs=1e-8), f"s={s}"

    def test_full_interval_from_zero(self, ctx1):
        """X^[0,b] infected from s1 equals P(first jump <= b) since every
        jump out of s1 lands in an infected state."""
        sat = PiecewiseSatSet.constant(frozenset({1, 2}), 0.0, 10.0)
        probs = next_probabilities(ctx1, sat, TimeInterval(0, 2.0))
        # From s1 every transition goes to s2 (infected).
        from repro.checking.transform import absorbing_generator_function
        from repro.ctmc.inhomogeneous import solve_forward_kolmogorov

        q_mod = absorbing_generator_function(
            ctx1.generator_function(), frozenset({1, 2})
        )
        pi = solve_forward_kolmogorov(q_mod, 0.0, 2.0)
        assert probs[0] == pytest.approx(1.0 - pi[0, 0], abs=1e-7)

    def test_degenerate_interval_is_zero(self, ctx1):
        sat = PiecewiseSatSet.constant(frozenset({1}), 0.0, 1.0)
        probs = next_probabilities(ctx1, sat, TimeInterval(0, 0))
        assert np.allclose(probs, 0.0)

    def test_empty_target_set(self, ctx1):
        sat = PiecewiseSatSet.constant(frozenset(), 0.0, 5.0)
        probs = next_probabilities(ctx1, sat, TimeInterval(0, 2.0))
        assert np.allclose(probs, 0.0)

    def test_time_varying_operand(self, ctx1):
        """The operand set switches mid-window; probability must lie
        between the two constant-set extremes."""
        lo = PiecewiseSatSet.constant(frozenset(), 0.0, 5.0)
        hi = PiecewiseSatSet.constant(frozenset({1, 2}), 0.0, 5.0)
        mixed = PiecewiseSatSet(
            [Piece(0.0, 1.0, frozenset()), Piece(1.0, 5.0, frozenset({1, 2}))]
        )
        interval = TimeInterval(0, 2.0)
        p_lo = next_probabilities(ctx1, lo, interval)[0]
        p_hi = next_probabilities(ctx1, hi, interval)[0]
        p_mixed = next_probabilities(ctx1, mixed, interval)[0]
        assert p_lo <= p_mixed <= p_hi
        assert p_mixed < p_hi  # part of the window contributes nothing

    def test_unbounded_interval_rejected(self, ctx1):
        sat = PiecewiseSatSet.constant(frozenset({1}), 0.0, 5.0)
        with pytest.raises(UnsupportedFormulaError):
            next_probabilities(ctx1, sat, TimeInterval(0, float("inf")))


class TestNextCurve:
    def test_matches_pointwise(self, ctx1):
        sat = PiecewiseSatSet.constant(frozenset({1, 2}), 0.0, 8.0)
        interval = TimeInterval(0, 1.0)
        curve = next_curve(ctx1, sat, interval, theta=4.0)
        for t in (0.0, 2.0, 4.0):
            direct = next_probabilities(ctx1, sat, interval, t=t)
            assert np.allclose(curve.values(t), direct, atol=1e-8)

    def test_declares_shifted_discontinuities(self, ctx1):
        sat = PiecewiseSatSet(
            [Piece(0.0, 3.0, frozenset()), Piece(3.0, 9.0, frozenset({1}))]
        )
        curve = next_curve(ctx1, sat, TimeInterval(0.5, 1.0), theta=5.0)
        assert any(abs(d - 2.0) < 1e-9 for d in curve.discontinuities)
        assert any(abs(d - 2.5) < 1e-9 for d in curve.discontinuities)
