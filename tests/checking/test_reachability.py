"""Tests for single-until probabilities and curves (Section IV-B)."""

import numpy as np
import pytest

from repro.checking.context import EvaluationContext
from repro.checking.options import CheckOptions
from repro.checking.reachability import (
    ProbabilityCurve,
    SimpleUntilCurve,
    until_probabilities_simple,
)
from repro.exceptions import CheckingError, UnsupportedFormulaError
from repro.logic.ast import TimeInterval

NOT_INFECTED = frozenset({0})
INFECTED = frozenset({1, 2})


class TestUntilProbabilities:
    def test_paper_example_structure(self, ctx1):
        """`¬inf U[0,1] inf` from each state, standard semantics."""
        probs = until_probabilities_simple(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0, 1)
        )
        # s1 has a small infection probability; infected states satisfy
        # the until trivially (they are Φ2 states at time 0).
        assert 0.0 < probs[0] < 0.2
        assert probs[1] == pytest.approx(1.0)
        assert probs[2] == pytest.approx(1.0)

    def test_phi1_convention_zeroes_phi2_starts(self, virus1, m_example1):
        ctx = EvaluationContext(
            virus1, m_example1, CheckOptions(start_convention="phi1")
        )
        probs = until_probabilities_simple(
            ctx, NOT_INFECTED, INFECTED, TimeInterval(0, 1)
        )
        assert probs[1] == 0.0
        assert probs[2] == 0.0
        assert probs[0] > 0.0

    def test_survival_complement(self, ctx1):
        """P(reach infected by T) + P(stay clean) == 1 from s1."""
        probs = until_probabilities_simple(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0, 4)
        )
        # With only one transient state, survival = 1 - reach.
        from repro.ctmc.inhomogeneous import solve_forward_kolmogorov
        from repro.checking.transform import absorbing_generator_function

        q_mod = absorbing_generator_function(
            ctx1.generator_function(), INFECTED
        )
        pi = solve_forward_kolmogorov(q_mod, 0.0, 4.0)
        assert probs[0] == pytest.approx(1.0 - pi[0, 0], abs=1e-7)

    def test_interval_with_positive_lower_bound(self, ctx1):
        """t1 > 0 requires surviving in Φ1 first."""
        whole = until_probabilities_simple(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0, 2)
        )
        late = until_probabilities_simple(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(1, 2)
        )
        assert late[0] < whole[0]
        # An infected start cannot satisfy a positive-lower-bound until
        # whose Φ1 excludes it.
        assert late[1] == pytest.approx(0.0, abs=1e-10)

    def test_monotone_in_horizon(self, ctx1):
        p_short = until_probabilities_simple(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0, 0.5)
        )[0]
        p_long = until_probabilities_simple(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0, 2.0)
        )[0]
        assert p_long > p_short

    def test_empty_gamma2_gives_zero(self, ctx1):
        probs = until_probabilities_simple(
            ctx1, NOT_INFECTED, frozenset(), TimeInterval(0, 1)
        )
        assert np.allclose(probs, 0.0)

    def test_unbounded_interval_rejected(self, ctx1):
        with pytest.raises(UnsupportedFormulaError):
            until_probabilities_simple(
                ctx1, NOT_INFECTED, INFECTED, TimeInterval(0, float("inf"))
            )


class TestSimpleUntilCurve:
    def test_curve_at_zero_matches_pointwise(self, ctx1):
        curve = SimpleUntilCurve(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0, 1), theta=10.0
        )
        direct = until_probabilities_simple(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0, 1)
        )
        assert np.allclose(curve.values(0.0), direct, atol=1e-7)

    def test_propagate_matches_recompute(self, ctx1):
        kwargs = dict(
            gamma1=NOT_INFECTED,
            gamma2=INFECTED,
            interval=TimeInterval(0, 1),
            theta=8.0,
        )
        fast = SimpleUntilCurve(ctx1, method="propagate", **kwargs)
        slow = SimpleUntilCurve(ctx1, method="recompute", **kwargs)
        for t in (0.0, 2.0, 5.0, 8.0):
            assert np.allclose(
                fast.values(t), slow.values(t), atol=1e-6
            ), f"t={t}"

    def test_positive_lower_bound_curve(self, ctx1):
        curve = SimpleUntilCurve(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0.5, 1.5), theta=5.0
        )
        direct = until_probabilities_simple(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0.5, 1.5), t=3.0
        )
        assert np.allclose(curve.values(3.0), direct, atol=1e-6)

    def test_out_of_range_rejected(self, ctx1):
        curve = SimpleUntilCurve(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0, 1), theta=2.0
        )
        with pytest.raises(CheckingError):
            curve.values(5.0)

    def test_decaying_infection_curve_is_decreasing(self, ctx1):
        """Setting 1 kills the virus, so the infection probability of a
        clean computer shrinks over time (our measured Figure-3 shape)."""
        curve = SimpleUntilCurve(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0, 1), theta=15.0
        )
        values = [curve.value(t, 0) for t in (0.0, 5.0, 10.0, 15.0)]
        assert all(a > b for a, b in zip(values, values[1:]))


class TestProbabilityCurve:
    def test_grid(self, ctx1):
        curve = SimpleUntilCurve(
            ctx1, NOT_INFECTED, INFECTED, TimeInterval(0, 1), theta=4.0
        )
        times, values = curve.grid(9)
        assert times.shape == (9,)
        assert values.shape == (9, 3)

    def test_crossing_times_found_and_refined(self):
        """A synthetic curve with a known crossing."""
        curve = ProbabilityCurve(
            lambda t: np.array([np.sin(t), 0.0]),
            0.0,
            3.0,
            2,
        )
        crossings = curve.crossing_times(0, 0.5, grid_points=65)
        assert len(crossings) == 2
        assert crossings[0] == pytest.approx(np.arcsin(0.5), abs=1e-8)
        assert crossings[1] == pytest.approx(np.pi - np.arcsin(0.5), abs=1e-8)

    def test_jump_discontinuity_reported(self):
        curve = ProbabilityCurve(
            lambda t: np.array([0.2 if t < 1.0 else 0.9]),
            0.0,
            2.0,
            1,
            discontinuities=[1.0],
        )
        crossings = curve.crossing_times(0, 0.5, grid_points=17)
        assert crossings == [pytest.approx(1.0)]

    def test_sat_boundaries_union(self):
        curve = ProbabilityCurve(
            lambda t: np.array([t / 10.0, 1.0 - t / 10.0]),
            0.0,
            10.0,
            2,
        )
        boundaries = curve.sat_boundaries(0.25, grid_points=33)
        assert len(boundaries) == 2
        assert boundaries[0] == pytest.approx(2.5, abs=1e-6)
        assert boundaries[1] == pytest.approx(7.5, abs=1e-6)

    def test_values_clipped_to_unit_interval(self):
        curve = ProbabilityCurve(
            lambda t: np.array([1.0 + 1e-9]), 0.0, 1.0, 1
        )
        assert curve.value(0.5, 0) == 1.0

    def test_bad_evaluator_shape_rejected(self):
        curve = ProbabilityCurve(lambda t: np.zeros(3), 0.0, 1.0, 2)
        with pytest.raises(CheckingError):
            curve.values(0.5)
