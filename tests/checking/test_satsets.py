"""Tests for piecewise-constant satisfaction sets."""

import pytest

from repro.checking.satsets import Piece, PiecewiseSatSet, combine
from repro.exceptions import CheckingError, ModelError


@pytest.fixture
def switching() -> PiecewiseSatSet:
    """{0} on [0, 2), {0,1} on [2, 5)."""
    return PiecewiseSatSet(
        [
            Piece(0.0, 2.0, frozenset({0})),
            Piece(2.0, 5.0, frozenset({0, 1})),
        ]
    )


class TestConstruction:
    def test_constant(self):
        s = PiecewiseSatSet.constant(frozenset({1}), 0.0, 3.0)
        assert s.is_constant
        assert s.at(1.5) == frozenset({1})
        assert s.boundaries() == []

    def test_adjacent_equal_pieces_merge(self):
        s = PiecewiseSatSet(
            [
                Piece(0.0, 1.0, frozenset({0})),
                Piece(1.0, 2.0, frozenset({0})),
            ]
        )
        assert s.is_constant

    def test_non_contiguous_rejected(self):
        with pytest.raises(ModelError):
            PiecewiseSatSet(
                [
                    Piece(0.0, 1.0, frozenset()),
                    Piece(2.0, 3.0, frozenset()),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            PiecewiseSatSet([])

    def test_from_boundaries(self):
        s = PiecewiseSatSet.from_boundaries(
            [2.0],
            lambda t: frozenset({0}) if t < 2.0 else frozenset({0, 1}),
            0.0,
            5.0,
        )
        assert s.boundaries() == [2.0]
        assert s.at(1.0) == frozenset({0})
        assert s.at(3.0) == frozenset({0, 1})

    def test_from_boundaries_ignores_out_of_window(self):
        s = PiecewiseSatSet.from_boundaries(
            [-1.0, 0.0, 5.0, 7.0],
            lambda t: frozenset({0}),
            0.0,
            5.0,
        )
        assert s.is_constant


class TestQueries:
    def test_at_respects_pieces(self, switching):
        assert switching.at(0.0) == frozenset({0})
        assert switching.at(1.999) == frozenset({0})
        assert switching.at(2.0) == frozenset({0, 1})
        assert switching.at(5.0) == frozenset({0, 1})

    def test_at_out_of_window(self, switching):
        with pytest.raises(CheckingError):
            switching.at(9.0)
        with pytest.raises(CheckingError):
            switching.at(-1.0)

    def test_window_properties(self, switching):
        assert switching.t_start == 0.0
        assert switching.t_end == 5.0
        assert not switching.is_constant

    def test_boundaries(self, switching):
        assert switching.boundaries() == [2.0]


class TestRestrict:
    def test_inside_single_piece(self, switching):
        r = switching.restrict(0.5, 1.5)
        assert r.is_constant
        assert r.t_start == 0.5 and r.t_end == 1.5

    def test_across_boundary(self, switching):
        r = switching.restrict(1.0, 3.0)
        assert r.boundaries() == [2.0]
        assert r.at(1.5) == frozenset({0})
        assert r.at(2.5) == frozenset({0, 1})

    def test_outside_rejected(self, switching):
        with pytest.raises(CheckingError):
            switching.restrict(0.0, 9.0)

    def test_empty_window_rejected(self, switching):
        with pytest.raises(ModelError):
            switching.restrict(3.0, 2.0)


class TestCombine:
    def test_intersection_of_sets(self, switching):
        other = PiecewiseSatSet.constant(frozenset({1, 2}), 0.0, 5.0)
        both = combine([switching, other], lambda vals: vals[0] & vals[1])
        assert both.at(1.0) == frozenset()
        assert both.at(3.0) == frozenset({1})

    def test_union_boundaries_merge(self):
        a = PiecewiseSatSet(
            [Piece(0.0, 1.0, frozenset({0})), Piece(1.0, 4.0, frozenset())]
        )
        b = PiecewiseSatSet(
            [Piece(0.0, 3.0, frozenset()), Piece(3.0, 4.0, frozenset({1}))]
        )
        union = combine([a, b], lambda vals: vals[0] | vals[1])
        assert union.boundaries() == [1.0, 3.0]
        assert union.at(0.5) == frozenset({0})
        assert union.at(2.0) == frozenset()
        assert union.at(3.5) == frozenset({1})

    def test_mismatched_windows_rejected(self, switching):
        other = PiecewiseSatSet.constant(frozenset(), 0.0, 9.0)
        with pytest.raises(CheckingError):
            combine([switching, other], lambda vals: vals[0])

    def test_empty_input_rejected(self):
        with pytest.raises(ModelError):
            combine([], lambda vals: frozenset())

    def test_repr(self, switching):
        assert "PiecewiseSatSet" in repr(switching)
