"""Unit tests for the statistical checker's internals."""

import numpy as np
import pytest

from repro.checking.statistical import (
    Estimate,
    StatisticalChecker,
    path_satisfies_next,
    path_satisfies_until,
)
from repro.ctmc.paths import Path
from repro.exceptions import UnsupportedFormulaError
from repro.logic.parser import parse_path

G1 = frozenset({0})
G2 = frozenset({1, 2})


class TestEstimate:
    def test_confidence_interval_symmetric(self):
        est = Estimate(value=0.5, stderr=0.05, samples=100)
        lo, hi = est.confidence_interval()
        assert lo == pytest.approx(0.5 - 1.96 * 0.05)
        assert hi == pytest.approx(0.5 + 1.96 * 0.05)

    def test_confidence_interval_clipped(self):
        est = Estimate(value=0.01, stderr=0.05, samples=100)
        lo, hi = est.confidence_interval()
        assert lo == 0.0
        assert hi < 1.0
        est_high = Estimate(value=0.99, stderr=0.05, samples=100)
        assert est_high.confidence_interval()[1] == 1.0


class TestPathPredicateUntil:
    def test_direct_hit(self):
        # 0 --(t=0.3)--> 1 within window [0, 1].
        path = Path(states=[0, 1], jump_times=[0.3], end_time=2.0)
        assert path_satisfies_until(path, G1, G2, 0.0, 1.0)

    def test_hit_after_window_fails(self):
        path = Path(states=[0, 1], jump_times=[1.5], end_time=2.0)
        assert not path_satisfies_until(path, G1, G2, 0.0, 1.0)

    def test_start_in_gamma2_with_open_window(self):
        path = Path(states=[1], end_time=2.0)
        assert path_satisfies_until(path, G1, G2, 0.0, 1.0)

    def test_start_in_gamma2_waiting_needs_gamma1(self):
        path = Path(states=[1, 2], jump_times=[0.2], end_time=2.0)
        # Window open at time 0: immediate witness, no waiting needed.
        assert path_satisfies_until(path, G1, G2, 0.0, 1.0)
        # Window opens at 0.1: the path must *wait* in state 1, which is
        # not a Γ1 state, so Φ1 is violated on [0, 0.1) and the until
        # fails — even though state 1 is a Γ2 state.
        assert not path_satisfies_until(path, G1, G2, 0.1, 1.0)
        # If state 1 also satisfies Γ1, waiting is allowed.
        assert path_satisfies_until(
            path, frozenset({0, 1}), G2, 0.1, 1.0
        )

    def test_gamma1_violation_blocks(self):
        # 0 -> 3 (neither Γ1 nor Γ2) -> 1: the detour kills the path.
        path = Path(states=[0, 3, 1], jump_times=[0.2, 0.4], end_time=2.0)
        gamma2 = frozenset({1})
        assert not path_satisfies_until(path, G1, gamma2, 0.0, 1.0)

    def test_waiting_in_gamma1_only_fails(self):
        path = Path(states=[0], end_time=5.0)
        assert not path_satisfies_until(path, G1, G2, 0.0, 1.0)

    def test_lower_bound_requires_survival(self):
        # Hit Γ2 at 0.3 but the window is [0.5, 1]: the path sits in the
        # Γ2 state through 0.5, and Γ2 states here are not in Γ1...
        path = Path(states=[0, 1], jump_times=[0.3], end_time=2.0)
        # σ@t for t in [0.3, 2] is state 1 ∈ Γ2: satisfied at t' = 0.5
        # provided Φ1 holds before 0.5 — but state 1 ∉ Γ1 on [0.3, 0.5).
        assert not path_satisfies_until(path, G1, frozenset({1}), 0.5, 1.0)
        # With Γ1 including state 1 the same path succeeds.
        assert path_satisfies_until(
            path, frozenset({0, 1}), frozenset({1}), 0.5, 1.0
        )


class TestPathPredicateNext:
    def test_first_jump_in_window(self):
        path = Path(states=[0, 2], jump_times=[0.7], end_time=2.0)
        assert path_satisfies_next(path, frozenset({2}), 0.5, 1.0)

    def test_first_jump_outside_window(self):
        path = Path(states=[0, 2], jump_times=[1.7], end_time=2.0)
        assert not path_satisfies_next(path, frozenset({2}), 0.5, 1.0)

    def test_wrong_target(self):
        path = Path(states=[0, 1], jump_times=[0.7], end_time=2.0)
        assert not path_satisfies_next(path, frozenset({2}), 0.5, 1.0)

    def test_no_jump(self):
        path = Path(states=[0], end_time=2.0)
        assert not path_satisfies_next(path, frozenset({0}), 0.0, 1.0)


class TestCheckerValidation:
    def test_nested_operand_rejected(self, ctx1):
        stat = StatisticalChecker(ctx1, samples=10, seed=0)
        nested = parse_path("(P[>0.5](tt U[0,1] infected)) U[0,1] infected")
        with pytest.raises(UnsupportedFormulaError):
            stat.path_probability(nested, "s1")

    def test_unbounded_rejected(self, ctx1):
        stat = StatisticalChecker(ctx1, samples=10, seed=0)
        with pytest.raises(UnsupportedFormulaError):
            stat.path_probability(parse_path("tt U infected"), "s1")

    def test_reproducible_with_seed(self, ctx1):
        path = parse_path("not_infected U[0,1] infected")
        a = StatisticalChecker(ctx1, samples=200, seed=3).path_probability(
            path, "s1"
        )
        b = StatisticalChecker(ctx1, samples=200, seed=3).path_probability(
            path, "s1"
        )
        assert a.value == b.value

    def test_state_by_index(self, ctx1):
        path = parse_path("tt U[0,0.5] infected")
        est = StatisticalChecker(ctx1, samples=50, seed=1).path_probability(
            path, 1
        )
        assert est.value == 1.0  # s2 is already infected
