"""Unit tests for the statistical checker's internals."""

import numpy as np
import pytest

from repro.checking.statistical import (
    Estimate,
    StatisticalChecker,
    batch_satisfies_next,
    batch_satisfies_until,
    path_satisfies_next,
    path_satisfies_until,
)
from repro.ctmc.paths import Path, PathBatch
from repro.exceptions import ModelError, UnsupportedFormulaError
from repro.logic.parser import parse_path

G1 = frozenset({0})
G2 = frozenset({1, 2})


def _batch_of(paths, end_time, num_states=4):
    """Pack plain Path objects into the padded PathBatch layout."""
    width = max(len(p.states) for p in paths)
    states = np.full((len(paths), width), -1, dtype=np.intp)
    jump_times = np.full((len(paths), max(width - 1, 0)), float(end_time))
    lengths = np.empty(len(paths), dtype=np.intp)
    for i, p in enumerate(paths):
        n = len(p.states)
        states[i, :n] = p.states
        jump_times[i, : n - 1] = p.jump_times
        lengths[i] = n
    return PathBatch(
        states=states,
        jump_times=jump_times,
        lengths=lengths,
        end_time=float(end_time),
    )


class TestEstimate:
    def test_confidence_interval_symmetric(self):
        est = Estimate(value=0.5, stderr=0.05, samples=100)
        lo, hi = est.confidence_interval()
        assert lo == pytest.approx(0.5 - 1.96 * 0.05)
        assert hi == pytest.approx(0.5 + 1.96 * 0.05)

    def test_confidence_interval_clipped(self):
        est = Estimate(value=0.01, stderr=0.05, samples=100)
        lo, hi = est.confidence_interval()
        assert lo == 0.0
        assert hi < 1.0
        est_high = Estimate(value=0.99, stderr=0.05, samples=100)
        assert est_high.confidence_interval()[1] == 1.0


class TestPathPredicateUntil:
    def test_direct_hit(self):
        # 0 --(t=0.3)--> 1 within window [0, 1].
        path = Path(states=[0, 1], jump_times=[0.3], end_time=2.0)
        assert path_satisfies_until(path, G1, G2, 0.0, 1.0)

    def test_hit_after_window_fails(self):
        path = Path(states=[0, 1], jump_times=[1.5], end_time=2.0)
        assert not path_satisfies_until(path, G1, G2, 0.0, 1.0)

    def test_start_in_gamma2_with_open_window(self):
        path = Path(states=[1], end_time=2.0)
        assert path_satisfies_until(path, G1, G2, 0.0, 1.0)

    def test_start_in_gamma2_waiting_needs_gamma1(self):
        path = Path(states=[1, 2], jump_times=[0.2], end_time=2.0)
        # Window open at time 0: immediate witness, no waiting needed.
        assert path_satisfies_until(path, G1, G2, 0.0, 1.0)
        # Window opens at 0.1: the path must *wait* in state 1, which is
        # not a Γ1 state, so Φ1 is violated on [0, 0.1) and the until
        # fails — even though state 1 is a Γ2 state.
        assert not path_satisfies_until(path, G1, G2, 0.1, 1.0)
        # If state 1 also satisfies Γ1, waiting is allowed.
        assert path_satisfies_until(
            path, frozenset({0, 1}), G2, 0.1, 1.0
        )

    def test_gamma1_violation_blocks(self):
        # 0 -> 3 (neither Γ1 nor Γ2) -> 1: the detour kills the path.
        path = Path(states=[0, 3, 1], jump_times=[0.2, 0.4], end_time=2.0)
        gamma2 = frozenset({1})
        assert not path_satisfies_until(path, G1, gamma2, 0.0, 1.0)

    def test_waiting_in_gamma1_only_fails(self):
        path = Path(states=[0], end_time=5.0)
        assert not path_satisfies_until(path, G1, G2, 0.0, 1.0)

    def test_lower_bound_requires_survival(self):
        # Hit Γ2 at 0.3 but the window is [0.5, 1]: the path sits in the
        # Γ2 state through 0.5, and Γ2 states here are not in Γ1...
        path = Path(states=[0, 1], jump_times=[0.3], end_time=2.0)
        # σ@t for t in [0.3, 2] is state 1 ∈ Γ2: satisfied at t' = 0.5
        # provided Φ1 holds before 0.5 — but state 1 ∉ Γ1 on [0.3, 0.5).
        assert not path_satisfies_until(path, G1, frozenset({1}), 0.5, 1.0)
        # With Γ1 including state 1 the same path succeeds.
        assert path_satisfies_until(
            path, frozenset({0, 1}), frozenset({1}), 0.5, 1.0
        )


class TestPathPredicateNext:
    def test_first_jump_in_window(self):
        path = Path(states=[0, 2], jump_times=[0.7], end_time=2.0)
        assert path_satisfies_next(path, frozenset({2}), 0.5, 1.0)

    def test_first_jump_outside_window(self):
        path = Path(states=[0, 2], jump_times=[1.7], end_time=2.0)
        assert not path_satisfies_next(path, frozenset({2}), 0.5, 1.0)

    def test_wrong_target(self):
        path = Path(states=[0, 1], jump_times=[0.7], end_time=2.0)
        assert not path_satisfies_next(path, frozenset({2}), 0.5, 1.0)

    def test_no_jump(self):
        path = Path(states=[0], end_time=2.0)
        assert not path_satisfies_next(path, frozenset({0}), 0.0, 1.0)


class TestBatchPredicates:
    """The vectorized predicates must agree *exactly* with the serial ones."""

    # Every structurally distinct case the serial until predicate handles:
    # direct hits, waiting for the window, Γ1 violations, padding-length
    # asymmetry (single-state paths packed next to long ones).
    PATHS = [
        Path(states=[0, 1], jump_times=[0.3], end_time=2.0),
        Path(states=[0, 1], jump_times=[1.5], end_time=2.0),
        Path(states=[1], end_time=2.0),
        Path(states=[1, 2], jump_times=[0.2], end_time=2.0),
        Path(states=[0, 3, 1], jump_times=[0.2, 0.4], end_time=2.0),
        Path(states=[0], end_time=2.0),
        Path(states=[0, 1, 0, 2], jump_times=[0.1, 0.5, 0.9], end_time=2.0),
        Path(states=[3], end_time=2.0),
        Path(states=[2, 0, 1], jump_times=[0.6, 1.1], end_time=2.0),
    ]

    WINDOWS = [(0.0, 1.0), (0.1, 1.0), (0.5, 1.0), (0.0, 0.15), (1.9, 2.0)]

    @pytest.mark.parametrize("window", WINDOWS)
    @pytest.mark.parametrize(
        "g1,g2",
        [
            (G1, G2),
            (frozenset({0, 1}), G2),
            (G1, frozenset({1})),
            (frozenset(), G2),
            (frozenset({0, 1, 2, 3}), frozenset({3})),
        ],
    )
    def test_until_matches_serial(self, window, g1, g2):
        t1, t2 = window
        batch = _batch_of(self.PATHS, end_time=2.0)
        vec = batch_satisfies_until(batch, g1, g2, t1, t2, 4)
        serial = [
            path_satisfies_until(p, g1, g2, t1, t2) for p in self.PATHS
        ]
        assert vec.tolist() == serial

    @pytest.mark.parametrize("window", WINDOWS)
    @pytest.mark.parametrize(
        "sat", [frozenset({1}), frozenset({0, 2}), frozenset()]
    )
    def test_next_matches_serial(self, window, sat):
        t1, t2 = window
        batch = _batch_of(self.PATHS, end_time=2.0)
        vec = batch_satisfies_next(batch, sat, t1, t2, 4)
        serial = [path_satisfies_next(p, sat, t1, t2) for p in self.PATHS]
        assert vec.tolist() == serial

    def test_all_jumpless(self):
        batch = _batch_of([Path(states=[1], end_time=2.0)], end_time=2.0)
        assert batch_satisfies_next(batch, G2, 0.0, 1.0, 4).tolist() == [False]
        assert batch_satisfies_until(batch, G1, G2, 0.0, 1.0, 4).tolist() == [
            True
        ]


class TestBatchedChecker:
    def test_workers_do_not_change_estimate(self, ctx1):
        """Bit-reproducibility across worker counts — the acceptance
        criterion of the parallel layer."""
        path = parse_path("not_infected U[0,1] infected")
        one = StatisticalChecker(
            ctx1, samples=600, seed=8, batch_size=128, workers=1
        ).path_probability(path, "s1")
        four = StatisticalChecker(
            ctx1, samples=600, seed=8, batch_size=128, workers=4
        ).path_probability(path, "s1")
        assert one.value == four.value

    def test_batched_and_serial_agree_in_distribution(self, ctx1):
        path = parse_path("not_infected U[0,1] infected")
        batched = StatisticalChecker(
            ctx1, samples=1500, seed=4, method="batched"
        ).path_probability(path, "s1")
        serial = StatisticalChecker(
            ctx1, samples=1500, seed=4, method="serial"
        ).path_probability(path, "s1")
        tol = 3.5 * (batched.stderr + serial.stderr)
        assert abs(batched.value - serial.value) <= tol

    def test_workers_default_from_options(self, ctx1, virus1, m_example1):
        from repro.checking import CheckOptions, EvaluationContext

        ctx = EvaluationContext(
            virus1, m_example1, CheckOptions(workers=3)
        )
        assert StatisticalChecker(ctx).workers == 3
        assert StatisticalChecker(ctx, workers=1).workers == 1

    def test_invalid_method_rejected(self, ctx1):
        with pytest.raises(ModelError):
            StatisticalChecker(ctx1, method="warp")

    def test_mc_stats_counted(self, ctx1):
        path = parse_path("not_infected U[0,1] infected")
        before = ctx1.stats.mc_paths
        StatisticalChecker(ctx1, samples=100, seed=1).path_probability(
            path, "s1"
        )
        assert ctx1.stats.mc_paths == before + 100
        assert ctx1.stats.mc_candidates > 0


class TestCheckerValidation:
    def test_nested_operand_rejected(self, ctx1):
        stat = StatisticalChecker(ctx1, samples=10, seed=0)
        nested = parse_path("(P[>0.5](tt U[0,1] infected)) U[0,1] infected")
        with pytest.raises(UnsupportedFormulaError):
            stat.path_probability(nested, "s1")

    def test_unbounded_rejected(self, ctx1):
        stat = StatisticalChecker(ctx1, samples=10, seed=0)
        with pytest.raises(UnsupportedFormulaError):
            stat.path_probability(parse_path("tt U infected"), "s1")

    @pytest.mark.parametrize("method", ["batched", "serial"])
    def test_reproducible_with_seed(self, ctx1, method):
        path = parse_path("not_infected U[0,1] infected")
        a = StatisticalChecker(
            ctx1, samples=200, seed=3, method=method
        ).path_probability(path, "s1")
        b = StatisticalChecker(
            ctx1, samples=200, seed=3, method=method
        ).path_probability(path, "s1")
        assert a.value == b.value

    def test_state_by_index(self, ctx1):
        path = parse_path("tt U[0,0.5] infected")
        est = StatisticalChecker(ctx1, samples=50, seed=1).path_probability(
            path, 1
        )
        assert est.value == 1.0  # s2 is already infected
