"""Tests for the steady-state operator (Section IV-D)."""

import numpy as np
import pytest

from repro.checking.context import EvaluationContext
from repro.checking.steady import (
    expected_steady_state_value,
    occupancy_weighted,
    steady_sat_states,
    steady_state_probability,
)
from repro.logic.ast import Bound
from repro.models.epidemic import SisParameters, sis_model


class TestSteadyStateProbability:
    def test_virus_setting1_dies_out(self, ctx1):
        """Setting 1's fluid limit converges to everyone clean."""
        p_infected = steady_state_probability(ctx1, frozenset({1, 2}))
        assert p_infected == pytest.approx(0.0, abs=1e-6)
        p_clean = steady_state_probability(ctx1, frozenset({0}))
        assert p_clean == pytest.approx(1.0, abs=1e-6)

    def test_independent_of_partition_choice(self, ctx1):
        total = steady_state_probability(ctx1, frozenset({0, 1, 2}))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_sis_endemic_level(self):
        """SIS with R0=2 settles at 50% infected (textbook value)."""
        model = sis_model(SisParameters(beta=2.0, gamma=1.0))
        ctx = EvaluationContext(model, np.array([0.9, 0.1]))
        p = steady_state_probability(ctx, frozenset({1}))
        assert p == pytest.approx(0.5, abs=1e-6)

    def test_basin_selection(self):
        """From zero infection the SIS model stays disease-free, so the
        steady state depends on the starting basin — the context must
        follow its own trajectory."""
        model = sis_model(SisParameters(beta=2.0, gamma=1.0))
        ctx = EvaluationContext(model, np.array([1.0, 0.0]))
        p = steady_state_probability(ctx, frozenset({1}))
        assert p == pytest.approx(0.0, abs=1e-9)


class TestSteadySatStates:
    def test_all_or_nothing(self, ctx1):
        bound_holds = Bound(">", 0.5)
        sat = steady_sat_states(ctx1, frozenset({0}), bound_holds)
        assert sat == frozenset({0, 1, 2})
        bound_fails = Bound(">", 0.5)
        sat2 = steady_sat_states(ctx1, frozenset({1, 2}), bound_fails)
        assert sat2 == frozenset()


class TestExpectedSteadyState:
    def test_equals_plain_steady_probability(self, ctx1):
        """ES collapses to the same number for every occupancy vector
        (Section V-A)."""
        value = expected_steady_state_value(ctx1, frozenset({0}))
        assert value == pytest.approx(
            steady_state_probability(ctx1, frozenset({0}))
        )


class TestOccupancyWeighted:
    def test_weighted_sum(self):
        m = np.array([0.5, 0.3, 0.2])
        values = np.array([1.0, 0.0, 0.5])
        assert occupancy_weighted(m, values) == pytest.approx(0.6)
