"""Tests for the until-checking CTMC transformations (Section IV-C)."""

import numpy as np
import pytest

from repro.checking.transform import (
    UntilPartition,
    absorbing_generator,
    absorbing_generator_function,
    goal_generator,
    goal_generator_function,
    goal_generator_literal,
    survival_zeta,
    zeta_matrix,
    zeta_matrix_literal,
)
from repro.ctmc.generator import build_generator
from repro.exceptions import CheckingError


@pytest.fixture
def q() -> np.ndarray:
    return build_generator(
        4,
        {
            (0, 1): 1.0,
            (1, 2): 2.0,
            (1, 0): 0.5,
            (2, 3): 0.7,
            (3, 0): 0.3,
        },
    )


class TestPartition:
    def test_success_wins_over_live(self):
        p = UntilPartition.from_sets(3, frozenset({0, 1}), frozenset({1, 2}))
        assert p.live == frozenset({0})
        assert p.success == frozenset({1, 2})
        assert p.fail == frozenset()

    def test_fail_is_the_rest(self):
        p = UntilPartition.from_sets(4, frozenset({1}), frozenset({2}))
        assert p.fail == frozenset({0, 3})

    def test_out_of_range_rejected(self):
        with pytest.raises(CheckingError):
            UntilPartition.from_sets(2, frozenset({5}), frozenset())


class TestAbsorbing:
    def test_rows_zeroed(self, q):
        mod = absorbing_generator(q, frozenset({1, 3}))
        assert np.all(mod[1] == 0.0)
        assert np.all(mod[3] == 0.0)
        assert np.array_equal(mod[0], q[0])

    def test_function_wrapper(self, q):
        fn = absorbing_generator_function(lambda t: q * (1 + t), frozenset({0}))
        mod = fn(1.0)
        assert np.all(mod[0] == 0.0)
        assert mod[1, 2] == pytest.approx(4.0)


class TestGoalGenerator:
    def test_shape_and_absorbing_rows(self, q):
        part = UntilPartition.from_sets(4, frozenset({0, 1}), frozenset({2}))
        g = goal_generator(q, part)
        assert g.shape == (5, 5)
        assert np.all(g[2] == 0.0)  # success absorbing
        assert np.all(g[3] == 0.0)  # fail absorbing
        assert np.all(g[4] == 0.0)  # goal absorbing

    def test_redirection_into_goal(self, q):
        part = UntilPartition.from_sets(4, frozenset({0, 1}), frozenset({2}))
        g = goal_generator(q, part)
        # live state 1 had rate 2.0 into success state 2 -> goes to goal.
        assert g[1, 2] == 0.0
        assert g[1, 4] == pytest.approx(2.0)
        # rates between live states survive
        assert g[1, 0] == pytest.approx(0.5)
        # rows still sum to zero
        assert np.allclose(g.sum(axis=1), 0.0)

    def test_transitions_into_fail_kept(self, q):
        part = UntilPartition.from_sets(4, frozenset({1, 2}), frozenset({3}))
        g = goal_generator(q, part)
        # live 1 -> fail 0 stays in place (mass dies there)
        assert g[1, 0] == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self, q):
        part = UntilPartition.from_sets(3, frozenset({0}), frozenset({1}))
        with pytest.raises(CheckingError):
            goal_generator(q, part)

    def test_function_wrapper(self, q):
        part = UntilPartition.from_sets(4, frozenset({0, 1}), frozenset({2}))
        fn = goal_generator_function(lambda t: q, part)
        assert np.array_equal(fn(0.0), goal_generator(q, part))


class TestGoalGeneratorLiteral:
    def test_fail_states_keep_transitions(self, q):
        # Γ1 = {1}, Γ2 = {2}: the literal construction freezes 1 but
        # lets fail state 0 keep moving (redirected into s*).
        part = UntilPartition.from_sets(4, frozenset({1}), frozenset({2}))
        g = goal_generator_literal(q, part)
        assert np.all(g[1] == 0.0)  # live (Γ1) frozen in the literal reading
        assert g[0, 1] == pytest.approx(1.0)  # fail keeps its transition
        assert np.all(g[2] == 0.0)

    def test_redirect_from_fail_to_goal(self, q):
        part = UntilPartition.from_sets(4, frozenset({3}), frozenset({2}))
        g = goal_generator_literal(q, part)
        # fail state 1 had rate 2.0 into success 2 -> redirected to goal.
        assert g[1, 2] == 0.0
        assert g[1, 4] == pytest.approx(2.0)


class TestZeta:
    def test_live_to_success_transfers_to_goal(self):
        before = UntilPartition.from_sets(3, frozenset({0, 1}), frozenset({2}))
        after = UntilPartition.from_sets(3, frozenset({1}), frozenset({0, 2}))
        z = zeta_matrix(before, after)
        assert z[0, 3] == 1.0  # live -> success: mass to goal
        assert z[1, 1] == 1.0  # stays live
        assert z[3, 3] == 1.0  # goal preserved

    def test_live_to_fail_loses_mass(self):
        before = UntilPartition.from_sets(2, frozenset({0}), frozenset())
        after = UntilPartition.from_sets(2, frozenset(), frozenset())
        z = zeta_matrix(before, after)
        assert np.all(z[0] == 0.0)

    def test_success_before_row_zero(self):
        before = UntilPartition.from_sets(2, frozenset(), frozenset({0}))
        after = UntilPartition.from_sets(2, frozenset(), frozenset({0}))
        z = zeta_matrix(before, after)
        assert np.all(z[0] == 0.0)

    def test_size_mismatch_rejected(self):
        a = UntilPartition.from_sets(2, frozenset(), frozenset())
        b = UntilPartition.from_sets(3, frozenset(), frozenset())
        with pytest.raises(CheckingError):
            zeta_matrix(a, b)

    def test_literal_zeta_matches_paper(self):
        z = zeta_matrix_literal(3)
        expected = np.zeros((4, 4))
        expected[3, 3] = 1.0
        assert np.array_equal(z, expected)


class TestSurvivalZeta:
    def test_keeps_intersection(self):
        z = survival_zeta(3, frozenset({0, 1}), frozenset({1, 2}))
        assert z[1, 1] == 1.0
        assert np.all(z[0] == 0.0)
        assert np.all(z[2] == 0.0)
