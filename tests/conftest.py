"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Strict-numerics CI mode: with REPRO_STRICT_NUMERICS set, silent
# NaN/Inf propagation becomes FloatingPointError at the operation that
# produced it, so the whole suite doubles as a non-finite regression
# gate (CI pairs this with ``-W error::RuntimeWarning``).  Underflow
# stays at its default — gradual underflow is benign and routine inside
# scipy's step-size control.  Set at import time so it also covers
# module-level code and fork-based worker processes.
if os.environ.get("REPRO_STRICT_NUMERICS"):
    np.seterr(divide="raise", over="raise", invalid="raise")

from repro.checking import CheckOptions, EvaluationContext
from repro.meanfield import MeanFieldModel
from repro.meanfield.local_model import LocalModelBuilder
from repro.models.virus import SETTING_1, SETTING_2, virus_model


@pytest.fixture
def virus1() -> MeanFieldModel:
    """The paper's virus model, Table II Setting 1."""
    return virus_model(SETTING_1)


@pytest.fixture
def virus2() -> MeanFieldModel:
    """The paper's virus model, Table II Setting 2."""
    return virus_model(SETTING_2)


@pytest.fixture
def m_example1() -> np.ndarray:
    """The occupancy vector of the paper's first worked example."""
    return np.array([0.8, 0.15, 0.05])


@pytest.fixture
def m_example2() -> np.ndarray:
    """The occupancy vector of the paper's nested worked example."""
    return np.array([0.85, 0.1, 0.05])


@pytest.fixture
def ctx1(virus1, m_example1) -> EvaluationContext:
    """Evaluation context of Example 1."""
    return EvaluationContext(virus1, m_example1)


@pytest.fixture
def ctx2(virus2, m_example2) -> EvaluationContext:
    """Evaluation context of Example 2."""
    return EvaluationContext(virus2, m_example2)


@pytest.fixture
def homogeneous_model() -> MeanFieldModel:
    """A 3-state mean-field model with constant rates.

    Used by the cross-validation tests: on such a model the
    time-inhomogeneous checkers must agree with the classical
    uniformization-based CSL algorithms.
    """
    builder = (
        LocalModelBuilder()
        .state("a", "low")
        .state("b", "mid")
        .state("c", "high", "goal")
        .transition("a", "b", 1.2)
        .transition("b", "a", 0.4)
        .transition("b", "c", 0.7)
        .transition("c", "b", 0.2)
        .transition("c", "a", 0.1)
    )
    return MeanFieldModel(builder.build())


@pytest.fixture
def fast_options() -> CheckOptions:
    """Loosened numerical options to keep slow tests quick."""
    return CheckOptions(ode_rtol=1e-6, ode_atol=1e-9, grid_points=33)
