"""Tests for DTMC helpers."""

import numpy as np
import pytest

from repro.ctmc.dtmc import (
    build_stochastic_matrix,
    is_stochastic_matrix,
    make_absorbing_dtmc,
    power_step_distribution,
    validate_stochastic_matrix,
)
from repro.exceptions import ModelError


class TestValidation:
    def test_valid_matrix(self):
        p = np.array([[0.5, 0.5], [0.2, 0.8]])
        validate_stochastic_matrix(p)
        assert is_stochastic_matrix(p)

    def test_rejects_negative(self):
        assert not is_stochastic_matrix(np.array([[1.5, -0.5], [0.0, 1.0]]))

    def test_rejects_bad_row_sum(self):
        assert not is_stochastic_matrix(np.array([[0.5, 0.4], [0.2, 0.8]]))

    def test_rejects_nonsquare(self):
        assert not is_stochastic_matrix(np.ones((2, 3)) / 3)

    def test_rejects_nan(self):
        assert not is_stochastic_matrix(np.array([[np.nan, 1.0], [0.5, 0.5]]))


class TestBuild:
    def test_missing_mass_goes_to_self_loop(self):
        p = build_stochastic_matrix(2, {(0, 1): 0.3})
        assert p[0, 0] == pytest.approx(0.7)
        assert p[1, 1] == pytest.approx(1.0)

    def test_rejects_overfull_row(self):
        with pytest.raises(ModelError):
            build_stochastic_matrix(2, {(0, 1): 1.5})

    def test_rejects_bad_index(self):
        with pytest.raises(ModelError):
            build_stochastic_matrix(2, {(0, 7): 0.5})

    def test_rejects_negative_probability(self):
        with pytest.raises(ModelError):
            build_stochastic_matrix(2, {(0, 1): -0.1})


class TestPowerStep:
    def test_zero_steps(self):
        p = build_stochastic_matrix(2, {(0, 1): 0.3, (1, 0): 0.6})
        initial = np.array([1.0, 0.0])
        assert np.array_equal(power_step_distribution(initial, p, 0), initial)

    def test_converges_to_stationary(self):
        p = build_stochastic_matrix(2, {(0, 1): 0.3, (1, 0): 0.6})
        dist = power_step_distribution(np.array([1.0, 0.0]), p, 500)
        # stationary: pi0 * 0.3 = pi1 * 0.6
        assert dist[0] == pytest.approx(2.0 / 3.0, abs=1e-9)

    def test_rejects_negative_steps(self):
        p = np.eye(2)
        with pytest.raises(ModelError):
            power_step_distribution(np.array([1.0, 0.0]), p, -1)


class TestAbsorbing:
    def test_absorbed_state_self_loops(self):
        p = build_stochastic_matrix(3, {(0, 1): 0.5, (1, 2): 0.5, (2, 0): 1.0})
        mod = make_absorbing_dtmc(p, {2})
        assert mod[2, 2] == 1.0
        assert np.all(mod[2, :2] == 0.0)
        assert np.array_equal(mod[0], p[0])
