"""Tests for generator-matrix construction and validation."""

import numpy as np
import pytest

from repro.ctmc.generator import (
    build_generator,
    embedded_jump_matrix,
    exit_rates,
    fix_diagonal,
    is_generator,
    make_absorbing,
    rate_dict_from_matrix,
    restrict_generator,
    uniformization_rate,
    uniformized_matrix,
    validate_generator,
)
from repro.exceptions import InvalidRateError, ModelError


@pytest.fixture
def q3() -> np.ndarray:
    return build_generator(
        3, {(0, 1): 2.0, (1, 0): 1.0, (1, 2): 0.5, (2, 0): 0.25}
    )


class TestBuildGenerator:
    def test_diagonal_is_minus_row_sum(self, q3):
        assert np.allclose(q3.sum(axis=1), 0.0)
        assert q3[0, 0] == -2.0
        assert q3[1, 1] == -1.5

    def test_offdiagonal_entries(self, q3):
        assert q3[0, 1] == 2.0
        assert q3[1, 2] == 0.5
        assert q3[2, 1] == 0.0

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidRateError):
            build_generator(2, {(0, 0): 1.0})

    def test_rejects_negative_rate(self):
        with pytest.raises(InvalidRateError):
            build_generator(2, {(0, 1): -1.0})

    def test_rejects_nan_rate(self):
        with pytest.raises(InvalidRateError):
            build_generator(2, {(0, 1): float("nan")})

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ModelError):
            build_generator(2, {(0, 5): 1.0})

    def test_rejects_empty_state_space(self):
        with pytest.raises(ModelError):
            build_generator(0, {})

    def test_empty_rates_gives_zero_matrix(self):
        q = build_generator(3, {})
        assert np.array_equal(q, np.zeros((3, 3)))


class TestValidation:
    def test_valid_generator_passes(self, q3):
        validate_generator(q3)
        assert is_generator(q3)

    def test_rejects_nonsquare(self):
        with pytest.raises(ModelError):
            validate_generator(np.zeros((2, 3)))

    def test_rejects_negative_offdiagonal(self):
        q = np.array([[-1.0, 1.0], [-0.5, 0.5]])
        # row sums are zero but (1, 0) is negative
        assert not is_generator(q)

    def test_rejects_nonzero_row_sum(self):
        q = np.array([[-1.0, 2.0], [0.5, -0.5]])
        assert not is_generator(q)

    def test_rejects_non_finite(self):
        q = np.array([[-np.inf, np.inf], [0.0, 0.0]])
        assert not is_generator(q)

    def test_fix_diagonal(self):
        raw = np.array([[99.0, 2.0], [1.0, -5.0]])
        fixed = fix_diagonal(raw)
        validate_generator(fixed)
        assert fixed[0, 1] == 2.0
        assert fixed[0, 0] == -2.0


class TestDerivedObjects:
    def test_exit_rates(self, q3):
        assert np.allclose(exit_rates(q3), [2.0, 1.5, 0.25])

    def test_uniformization_rate_covers_max_exit(self, q3):
        lam = uniformization_rate(q3)
        assert lam >= 2.0

    def test_uniformization_rate_zero_generator(self):
        assert uniformization_rate(np.zeros((2, 2))) == 1.0

    def test_uniformized_matrix_is_stochastic(self, q3):
        p = uniformized_matrix(q3)
        assert np.all(p >= 0)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_uniformized_matrix_rejects_small_rate(self, q3):
        with pytest.raises(ModelError):
            uniformized_matrix(q3, rate=1.0)

    def test_embedded_jump_matrix(self, q3):
        p = embedded_jump_matrix(q3)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert p[0, 1] == 1.0
        assert p[1, 0] == pytest.approx(1.0 / 1.5)
        assert np.all(np.diag(p)[:2] == 0.0)

    def test_embedded_jump_matrix_absorbing_state(self):
        q = build_generator(2, {(0, 1): 1.0})
        p = embedded_jump_matrix(q)
        assert p[1, 1] == 1.0

    def test_make_absorbing(self, q3):
        q = make_absorbing(q3, {1})
        assert np.all(q[1] == 0.0)
        assert np.array_equal(q[0], q3[0])

    def test_restrict_generator_preserves_exit_rates(self, q3):
        sub = restrict_generator(q3, [0, 1])
        assert sub[0, 0] == q3[0, 0]
        assert sub[1, 1] == q3[1, 1]
        # the 1 -> 2 rate disappears from off-diagonals
        assert sub[1, 0] == q3[1, 0]

    def test_rate_dict_roundtrip(self, q3):
        rates = rate_dict_from_matrix(q3)
        rebuilt = build_generator(3, rates)
        assert np.allclose(rebuilt, q3)
