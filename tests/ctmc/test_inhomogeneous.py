"""Tests for the time-inhomogeneous Kolmogorov solvers (Eqs. 5, 6)."""

import numpy as np
import pytest

from repro.ctmc.generator import build_generator
from repro.ctmc.inhomogeneous import (
    TransitionMatrixPropagator,
    rk4_matrix_ode,
    solve_backward_kolmogorov,
    solve_forward_kolmogorov,
    solve_forward_stepwise,
)
from repro.ctmc.transient import transient_matrix_expm
from repro.exceptions import HorizonError, ModelError


@pytest.fixture
def q_const() -> np.ndarray:
    return build_generator(
        3, {(0, 1): 1.0, (1, 0): 0.5, (1, 2): 0.3, (2, 1): 0.2}
    )


@pytest.fixture
def q_of_t(q_const):
    """A smoothly varying generator (sinusoidal modulation)."""

    def gen(t: float) -> np.ndarray:
        return q_const * (1.0 + 0.5 * np.sin(t))

    return gen


class TestForwardKolmogorov:
    def test_constant_generator_matches_expm(self, q_const):
        pi = solve_forward_kolmogorov(lambda t: q_const, 0.0, 2.5)
        assert np.allclose(pi, transient_matrix_expm(q_const, 2.5), atol=1e-7)

    def test_zero_duration_identity(self, q_of_t):
        assert np.allclose(solve_forward_kolmogorov(q_of_t, 1.0, 0.0), np.eye(3))

    def test_rows_are_distributions(self, q_of_t):
        pi = solve_forward_kolmogorov(q_of_t, 0.5, 4.0)
        assert np.all(pi >= -1e-9)
        assert np.allclose(pi.sum(axis=1), 1.0, atol=1e-8)

    def test_chapman_kolmogorov(self, q_of_t):
        """Pi(0, 3) == Pi(0, 1) @ Pi(1, 3) for inhomogeneous chains."""
        whole = solve_forward_kolmogorov(q_of_t, 0.0, 3.0)
        first = solve_forward_kolmogorov(q_of_t, 0.0, 1.0)
        second = solve_forward_kolmogorov(q_of_t, 1.0, 2.0)
        assert np.allclose(whole, first @ second, atol=1e-7)

    def test_negative_duration_rejected(self, q_of_t):
        with pytest.raises(ModelError):
            solve_forward_kolmogorov(q_of_t, 0.0, -1.0)

    def test_dense_output(self, q_of_t):
        dense = solve_forward_kolmogorov(q_of_t, 0.0, 2.0, dense=True)
        direct = solve_forward_kolmogorov(q_of_t, 0.0, 1.3)
        assert np.allclose(dense(1.3), direct, atol=1e-7)
        with pytest.raises(HorizonError):
            dense(5.0)


class TestBackwardKolmogorov:
    def test_matches_forward(self, q_of_t):
        fwd = solve_forward_kolmogorov(q_of_t, 0.5, 2.5)
        bwd = solve_backward_kolmogorov(q_of_t, 0.5, 3.0)
        assert np.allclose(fwd, bwd, atol=1e-7)

    def test_degenerate_interval(self, q_of_t):
        assert np.allclose(solve_backward_kolmogorov(q_of_t, 2.0, 2.0), np.eye(3))

    def test_rejects_reversed_interval(self, q_of_t):
        with pytest.raises(ModelError):
            solve_backward_kolmogorov(q_of_t, 3.0, 2.0)


class TestStepwiseProduct:
    def test_matches_ode_solution(self, q_of_t):
        ode = solve_forward_kolmogorov(q_of_t, 0.0, 2.0)
        product = solve_forward_stepwise(q_of_t, 0.0, 2.0, steps=500)
        assert np.allclose(ode, product, atol=1e-6)

    def test_rejects_bad_steps(self, q_of_t):
        with pytest.raises(ModelError):
            solve_forward_stepwise(q_of_t, 0.0, 1.0, steps=0)


class TestRk4:
    def test_matches_scipy_on_linear_ode(self, q_const):
        rhs = lambda t, y: y @ q_const
        result = rk4_matrix_ode(rhs, np.eye(3), 0.0, 2.0, steps=800)
        assert np.allclose(result, transient_matrix_expm(q_const, 2.0), atol=1e-8)


class TestPropagator:
    def test_matches_direct_solve(self, q_of_t):
        prop = TransitionMatrixPropagator(q_of_t, window=1.5, t0=0.0, horizon=4.0)
        for t in (0.0, 1.0, 2.7, 4.0):
            direct = solve_forward_kolmogorov(q_of_t, t, 1.5)
            assert np.allclose(prop(t), direct, atol=1e-6), f"t={t}"

    def test_zero_window(self, q_of_t):
        prop = TransitionMatrixPropagator(q_of_t, window=0.0, t0=0.0, horizon=2.0)
        assert np.allclose(prop(1.0), np.eye(3), atol=1e-7)

    def test_out_of_range_rejected(self, q_of_t):
        prop = TransitionMatrixPropagator(q_of_t, window=1.0, t0=0.0, horizon=2.0)
        with pytest.raises(HorizonError):
            prop(3.0)

    def test_degenerate_horizon(self, q_of_t):
        prop = TransitionMatrixPropagator(q_of_t, window=1.0, t0=1.0, horizon=1.0)
        direct = solve_forward_kolmogorov(q_of_t, 1.0, 1.0)
        assert np.allclose(prop(1.0), direct, atol=1e-8)
