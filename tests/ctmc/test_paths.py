"""Tests for the CTMC path samplers."""

import numpy as np
import pytest

from repro.ctmc.generator import build_generator
from repro.ctmc.paths import (
    Path,
    PathBatch,
    estimate_rate_bound,
    sample_homogeneous_path,
    sample_inhomogeneous_path,
    sample_inhomogeneous_paths,
)
from repro.ctmc.transient import transient_matrix_expm
from repro.exceptions import ModelError, NumericalError


@pytest.fixture
def q() -> np.ndarray:
    return build_generator(
        3, {(0, 1): 1.0, (1, 0): 0.5, (1, 2): 0.3, (2, 1): 0.2}
    )


class TestPathObject:
    def test_state_at(self):
        path = Path(states=[0, 1, 2], jump_times=[1.0, 2.5], end_time=5.0)
        assert path.state_at(0.0) == 0
        assert path.state_at(0.99) == 0
        assert path.state_at(1.5) == 1
        assert path.state_at(3.0) == 2
        assert path.state_at(5.0) == 2

    def test_state_at_out_of_range(self):
        path = Path(states=[0], end_time=1.0)
        with pytest.raises(ModelError):
            path.state_at(2.0)

    def test_len(self):
        assert len(Path(states=[0, 1], jump_times=[0.5], end_time=1.0)) == 2


class TestHomogeneousSampler:
    def test_jump_times_sorted_and_within_horizon(self, q):
        rng = np.random.default_rng(0)
        path = sample_homogeneous_path(q, 0, 10.0, rng)
        times = np.asarray(path.jump_times)
        assert np.all(np.diff(times) >= 0)
        assert np.all(times <= 10.0)
        assert len(path.states) == len(path.jump_times) + 1

    def test_absorbing_state_stops(self):
        q = build_generator(2, {(0, 1): 5.0})
        rng = np.random.default_rng(1)
        path = sample_homogeneous_path(q, 0, 100.0, rng)
        assert path.states[-1] == 1
        assert len(path.states) == 2

    def test_empirical_distribution_matches_transient(self, q):
        """The sampled state at t=1 follows expm(Q)[0]."""
        rng = np.random.default_rng(42)
        counts = np.zeros(3)
        n = 3000
        for _ in range(n):
            path = sample_homogeneous_path(q, 0, 1.0, rng)
            counts[path.state_at(1.0)] += 1
        expected = transient_matrix_expm(q, 1.0)[0]
        assert np.allclose(counts / n, expected, atol=0.03)


class TestInhomogeneousSampler:
    def test_constant_generator_matches_homogeneous_statistics(self, q):
        rng = np.random.default_rng(7)
        counts = np.zeros(3)
        n = 3000
        for _ in range(n):
            path = sample_inhomogeneous_path(lambda t: q, 0, 1.0, rng)
            counts[path.state_at(1.0)] += 1
        expected = transient_matrix_expm(q, 1.0)[0]
        assert np.allclose(counts / n, expected, atol=0.03)

    def test_bound_violation_raises(self, q):
        # Rates grow past the probed bound -> loud failure, not silence.
        def growing(t: float) -> np.ndarray:
            return q * (1.0 + 100.0 * t)

        rng = np.random.default_rng(3)
        with pytest.raises(NumericalError):
            for _ in range(200):
                sample_inhomogeneous_path(
                    growing, 0, 10.0, rng, rate_bound=0.5
                )

    def test_negative_horizon_rejected(self, q):
        with pytest.raises(ModelError):
            sample_inhomogeneous_path(
                lambda t: q, 0, -1.0, np.random.default_rng(0)
            )

    def test_zero_horizon(self, q):
        path = sample_inhomogeneous_path(
            lambda t: q, 1, 0.0, np.random.default_rng(0)
        )
        assert path.states == [1]
        assert path.jump_times == []


def _q_batch_const(q):
    """Constant batched generator: times (A,) -> stacked copies of q."""

    def q_batch(ts):
        ts = np.asarray(ts, dtype=float)
        return np.broadcast_to(q, (ts.size,) + q.shape).copy()

    return q_batch


class TestPathBatch:
    def test_path_extraction_round_trip(self, q):
        rng = np.random.default_rng(11)
        batch = sample_inhomogeneous_paths(
            _q_batch_const(q), 0, 4.0, rng, replicas=16
        )
        assert len(batch) == 16
        for i in range(16):
            path = batch.path(i)
            assert len(path.states) == int(batch.lengths[i])
            assert len(path.jump_times) == len(path.states) - 1
            times = np.asarray(path.jump_times)
            assert np.all(np.diff(times) >= 0)
            assert np.all(times <= 4.0)
            assert path.end_time == 4.0
            assert all(0 <= s < 3 for s in path.states)

    def test_padding_conventions(self, q):
        rng = np.random.default_rng(13)
        batch = sample_inhomogeneous_paths(
            _q_batch_const(q), 0, 2.0, rng, replicas=32
        )
        width = batch.states.shape[1]
        for i in range(32):
            n = int(batch.lengths[i])
            assert np.all(batch.states[i, n:] == -1)
            assert np.all(batch.jump_times[i, n - 1 :] == 2.0)
            # state_at-style lookups work on the padded row directly:
            # searchsorted past the last real jump lands on states[n-1].
            if n < width:
                idx = int(
                    np.searchsorted(batch.jump_times[i], 1.999, side="right")
                )
                assert idx <= n - 1 or batch.states[i, idx] != -1

    def test_mixed_start_states(self, q):
        rng = np.random.default_rng(5)
        starts = np.array([0, 1, 2, 1])
        batch = sample_inhomogeneous_paths(
            _q_batch_const(q), starts, 1.0, rng
        )
        assert np.array_equal(batch.states[:, 0], starts)

    def test_empirical_distribution_matches_transient(self, q):
        """State at t=1 across the batch follows expm(Q)[0] — the batched
        sampler agrees with the exact transient law (and hence with the
        serial samplers, which are tested against the same law)."""
        rng = np.random.default_rng(21)
        n = 3000
        batch = sample_inhomogeneous_paths(
            _q_batch_const(q), 0, 1.0, rng, replicas=n
        )
        counts = np.zeros(3)
        for i in range(n):
            counts[batch.path(i).state_at(1.0)] += 1
        expected = transient_matrix_expm(q, 1.0)[0]
        assert np.allclose(counts / n, expected, atol=0.03)

    def test_deterministic_given_seed(self, q):
        a = sample_inhomogeneous_paths(
            _q_batch_const(q), 0, 2.0, np.random.default_rng(9), replicas=8
        )
        b = sample_inhomogeneous_paths(
            _q_batch_const(q), 0, 2.0, np.random.default_rng(9), replicas=8
        )
        assert np.array_equal(a.states, b.states)
        assert np.array_equal(a.jump_times, b.jump_times)
        assert np.array_equal(a.lengths, b.lengths)

    def test_absorbing_state_never_leaves(self):
        q = build_generator(2, {(0, 1): 5.0})
        rng = np.random.default_rng(2)
        batch = sample_inhomogeneous_paths(
            _q_batch_const(q), 0, 50.0, rng, replicas=20, rate_bound=6.0
        )
        assert np.all(batch.lengths <= 2)
        final = batch.states[np.arange(20), batch.lengths - 1]
        assert np.all(final == 1)

    def test_bound_violation_raises(self, q):
        with pytest.raises(NumericalError):
            sample_inhomogeneous_paths(
                _q_batch_const(q * 10.0),
                0,
                5.0,
                np.random.default_rng(3),
                replicas=50,
                rate_bound=0.5,
            )

    def test_zero_horizon(self, q):
        batch = sample_inhomogeneous_paths(
            _q_batch_const(q), 1, 0.0, np.random.default_rng(0), replicas=4
        )
        assert np.all(batch.lengths == 1)
        assert np.all(batch.states[:, 0] == 1)

    def test_empty_batch_rejected(self, q):
        with pytest.raises(ModelError):
            sample_inhomogeneous_paths(
                _q_batch_const(q), np.array([], dtype=int), 1.0,
                np.random.default_rng(0),
            )

    def test_stats_candidates_counted(self, q):
        class Counters:
            mc_candidates = 0

        counters = Counters()
        sample_inhomogeneous_paths(
            _q_batch_const(q), 0, 2.0, np.random.default_rng(1),
            replicas=10, stats=counters,
        )
        assert counters.mc_candidates >= 10  # one candidate clock minimum


class TestRateBound:
    def test_probes_peak_exit_rate(self, q):
        # Exit rates: state 0 -> 1.0, state 1 -> 0.8, state 2 -> 0.2.
        bound = estimate_rate_bound(lambda t: q, 5.0, bound_safety=1.5)
        assert bound == pytest.approx(1.5 * 1.0)

    def test_zero_horizon_probes_origin(self, q):
        bound = estimate_rate_bound(lambda t: q, 0.0)
        assert bound > 0.0
