"""Tests for the CTMC path samplers."""

import numpy as np
import pytest

from repro.ctmc.generator import build_generator
from repro.ctmc.paths import (
    Path,
    sample_homogeneous_path,
    sample_inhomogeneous_path,
)
from repro.ctmc.transient import transient_matrix_expm
from repro.exceptions import ModelError, NumericalError


@pytest.fixture
def q() -> np.ndarray:
    return build_generator(
        3, {(0, 1): 1.0, (1, 0): 0.5, (1, 2): 0.3, (2, 1): 0.2}
    )


class TestPathObject:
    def test_state_at(self):
        path = Path(states=[0, 1, 2], jump_times=[1.0, 2.5], end_time=5.0)
        assert path.state_at(0.0) == 0
        assert path.state_at(0.99) == 0
        assert path.state_at(1.5) == 1
        assert path.state_at(3.0) == 2
        assert path.state_at(5.0) == 2

    def test_state_at_out_of_range(self):
        path = Path(states=[0], end_time=1.0)
        with pytest.raises(ModelError):
            path.state_at(2.0)

    def test_len(self):
        assert len(Path(states=[0, 1], jump_times=[0.5], end_time=1.0)) == 2


class TestHomogeneousSampler:
    def test_jump_times_sorted_and_within_horizon(self, q):
        rng = np.random.default_rng(0)
        path = sample_homogeneous_path(q, 0, 10.0, rng)
        times = np.asarray(path.jump_times)
        assert np.all(np.diff(times) >= 0)
        assert np.all(times <= 10.0)
        assert len(path.states) == len(path.jump_times) + 1

    def test_absorbing_state_stops(self):
        q = build_generator(2, {(0, 1): 5.0})
        rng = np.random.default_rng(1)
        path = sample_homogeneous_path(q, 0, 100.0, rng)
        assert path.states[-1] == 1
        assert len(path.states) == 2

    def test_empirical_distribution_matches_transient(self, q):
        """The sampled state at t=1 follows expm(Q)[0]."""
        rng = np.random.default_rng(42)
        counts = np.zeros(3)
        n = 3000
        for _ in range(n):
            path = sample_homogeneous_path(q, 0, 1.0, rng)
            counts[path.state_at(1.0)] += 1
        expected = transient_matrix_expm(q, 1.0)[0]
        assert np.allclose(counts / n, expected, atol=0.03)


class TestInhomogeneousSampler:
    def test_constant_generator_matches_homogeneous_statistics(self, q):
        rng = np.random.default_rng(7)
        counts = np.zeros(3)
        n = 3000
        for _ in range(n):
            path = sample_inhomogeneous_path(lambda t: q, 0, 1.0, rng)
            counts[path.state_at(1.0)] += 1
        expected = transient_matrix_expm(q, 1.0)[0]
        assert np.allclose(counts / n, expected, atol=0.03)

    def test_bound_violation_raises(self, q):
        # Rates grow past the probed bound -> loud failure, not silence.
        def growing(t: float) -> np.ndarray:
            return q * (1.0 + 100.0 * t)

        rng = np.random.default_rng(3)
        with pytest.raises(NumericalError):
            for _ in range(200):
                sample_inhomogeneous_path(
                    growing, 0, 10.0, rng, rate_bound=0.5
                )

    def test_negative_horizon_rejected(self, q):
        with pytest.raises(ModelError):
            sample_inhomogeneous_path(
                lambda t: q, 0, -1.0, np.random.default_rng(0)
            )

    def test_zero_horizon(self, q):
        path = sample_inhomogeneous_path(
            lambda t: q, 1, 0.0, np.random.default_rng(0)
        )
        assert path.states == [1]
        assert path.jump_times == []
