"""Tests for the piecewise-homogeneous propagator engine."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.ctmc.inhomogeneous import solve_forward_kolmogorov
from repro.ctmc.propagators import PropagatorEngine
from repro.exceptions import ModelError, NumericalError
from repro.instrumentation import EvalStats

Q_CONST = np.array(
    [
        [-1.0, 1.0, 0.0],
        [0.5, -1.5, 1.0],
        [0.0, 0.0, 0.0],
    ]
)


def q_const(t: float) -> np.ndarray:
    return Q_CONST


def q_periodic(t: float) -> np.ndarray:
    """A smoothly time-varying generator with non-commuting snapshots."""
    a = 1.0 + 0.5 * np.sin(t)
    b = 0.3 + 0.2 * np.cos(0.7 * t)
    return np.array(
        [
            [-a, a, 0.0],
            [b, -(a + b), a],
            [0.0, 0.2, -0.2],
        ]
    )


def reference(q_of_t, a, b):
    """High-accuracy ODE transient matrix for comparisons."""
    return solve_forward_kolmogorov(
        q_of_t, a, b - a, rtol=1e-11, atol=1e-13
    )


class TestBasics:
    def test_constant_generator_matches_expm(self):
        engine = PropagatorEngine(q_const, tol=1e-8)
        pi = engine.propagate(0.0, 2.5)
        assert np.allclose(pi, expm(2.5 * Q_CONST), atol=1e-8)

    def test_time_varying_matches_ode(self):
        engine = PropagatorEngine(q_periodic, tol=1e-7)
        for a, b in [(0.0, 3.0), (0.7, 1.9), (2.2, 5.8)]:
            pi = engine.propagate(a, b)
            assert np.max(np.abs(pi - reference(q_periodic, a, b))) < 1e-7

    def test_zero_window_is_identity(self):
        engine = PropagatorEngine(q_periodic)
        assert np.allclose(engine.propagate(1.3, 1.3), np.eye(3))

    def test_window_inside_single_cell(self):
        engine = PropagatorEngine(q_periodic, tol=1e-7, initial_cells=2)
        engine.ensure(0.0, 4.0)
        h = engine.cell_width
        a, b = 0.1 * h, 0.6 * h  # strictly inside the first cell
        pi = engine.propagate(a, b)
        assert np.max(np.abs(pi - reference(q_periodic, a, b))) < 1e-7

    def test_composition_property(self):
        engine = PropagatorEngine(q_periodic, tol=1e-8)
        whole = engine.propagate(0.0, 3.0)
        split = engine.propagate(0.0, 1.3) @ engine.propagate(1.3, 3.0)
        assert np.allclose(whole, split, atol=1e-7)

    def test_rows_are_stochastic(self):
        engine = PropagatorEngine(q_periodic, tol=1e-7)
        pi = engine.propagate(0.0, 4.0)
        assert np.allclose(pi.sum(axis=1), 1.0, atol=1e-7)
        assert pi.min() > -1e-9


class TestBatched:
    def test_propagate_many_matches_scalar(self):
        engine = PropagatorEngine(q_periodic, tol=1e-7)
        ts = np.linspace(0.0, 2.0, 11)
        batch = engine.propagate_many(ts, 1.5)
        singles = np.stack([engine.propagate(t, t + 1.5) for t in ts])
        assert np.allclose(batch, singles, atol=1e-12)

    def test_prepare_windows_then_propagate_builds_nothing(self):
        stats = EvalStats()
        engine = PropagatorEngine(q_periodic, tol=1e-7, stats=stats)
        starts = np.array([0.2, 0.9, 1.7])
        ends = starts + 1.1
        engine.prepare_windows(starts, ends)
        built = stats.propagator_cells_built
        for a, b in zip(starts, ends):
            engine.propagate(a, b)
        assert stats.propagator_cells_built == built

    def test_empty_batch(self):
        engine = PropagatorEngine(q_periodic)
        assert engine.propagate_many(np.array([]), 1.0).shape == (0, 3, 3)

    def test_batched_generator_path_agrees(self):
        def q_many(ts):
            return np.stack([q_periodic(t) for t in ts])

        scalar_engine = PropagatorEngine(q_periodic, tol=1e-7)
        batch_engine = PropagatorEngine(
            q_periodic, q_many=q_many, tol=1e-7
        )
        ts = np.linspace(0.0, 2.0, 9)
        assert np.allclose(
            scalar_engine.propagate_many(ts, 1.5),
            batch_engine.propagate_many(ts, 1.5),
            atol=1e-12,
        )


class TestDefectControl:
    def test_coarse_grid_refines_until_accurate(self):
        stats = EvalStats()
        engine = PropagatorEngine(
            q_periodic, tol=1e-9, initial_cells=1, stats=stats
        )
        pi = engine.propagate(0.0, 6.0)
        assert engine.refinements > 0
        assert stats.propagator_refinements == engine.refinements
        assert np.max(np.abs(pi - reference(q_periodic, 0.0, 6.0))) < 1e-9

    def test_refinement_cap_raises(self):
        engine = PropagatorEngine(
            q_periodic, tol=1e-12, initial_cells=1, max_refinements=0
        )
        with pytest.raises(NumericalError):
            engine.propagate(0.0, 6.0)

    def test_cf4_convergence_order(self):
        """Halving the cells must shrink the defect ~16x (4th order)."""
        errors = []
        for cells in (4, 8):
            engine = PropagatorEngine(
                q_periodic, tol=1e6, initial_cells=cells
            )
            engine.ensure(0.0, 4.0)
            assert engine.refinements == 0
            pi = engine.propagate(0.0, 4.0)
            errors.append(
                np.max(np.abs(pi - reference(q_periodic, 0.0, 4.0)))
            )
        assert errors[0] / errors[1] > 8.0

    def test_validated_window_reused_without_reprobing(self):
        engine = PropagatorEngine(q_periodic, tol=1e-7)
        engine.ensure(0.0, 5.0, window=2.0)
        refs_before = len(engine._references)
        engine.propagate(1.0, 2.5)  # inside range, shorter window
        assert len(engine._references) == refs_before


class TestKernels:
    def test_uniformization_matches_expm_kernel(self):
        fine = PropagatorEngine(q_periodic, tol=1e-7, kernel="expm")
        unif = PropagatorEngine(
            q_periodic, tol=1e-7, kernel="uniformization"
        )
        a, b = 0.3, 3.1
        assert np.max(np.abs(fine.propagate(a, b) - unif.propagate(a, b))) < 2e-7

    def test_uniformization_defaults_to_order_2(self):
        engine = PropagatorEngine(q_periodic, kernel="uniformization")
        assert engine.order == 2

    def test_auto_kernel_small_state_space(self):
        engine = PropagatorEngine(q_periodic)
        assert engine.kernel == "expm"
        assert engine.order == 4

    def test_midpoint_kernel_accurate(self):
        engine = PropagatorEngine(q_periodic, tol=1e-7, order=2)
        pi = engine.propagate(0.0, 3.0)
        assert np.max(np.abs(pi - reference(q_periodic, 0.0, 3.0))) < 1e-7


class TestStats:
    def test_counters_track_builds_hits_products(self):
        stats = EvalStats()
        engine = PropagatorEngine(q_periodic, tol=1e-7, stats=stats)
        engine.propagate(0.0, 3.0)
        built_first = stats.propagator_cells_built
        assert built_first > 0
        assert stats.propagator_products > 0
        engine.propagate(0.0, 3.0)
        # Same window again: everything served from the cache.
        assert stats.propagator_cells_built == built_first
        assert stats.propagator_cache_hits > 0


class TestValidation:
    def test_reversed_window_rejected(self):
        with pytest.raises(ModelError):
            PropagatorEngine(q_periodic).propagate(2.0, 1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ModelError):
            PropagatorEngine(q_periodic).propagate(-1.0, 1.0)

    def test_bad_kernel_rejected(self):
        with pytest.raises(ModelError):
            PropagatorEngine(q_periodic, kernel="pade")

    def test_bad_tol_rejected(self):
        with pytest.raises(ModelError):
            PropagatorEngine(q_periodic, tol=0.0)

    def test_order4_uniformization_rejected(self):
        with pytest.raises(ModelError):
            PropagatorEngine(
                q_periodic, kernel="uniformization", order=4
            )
