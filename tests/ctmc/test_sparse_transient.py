"""Sparse transient kernels and the action propagator.

Unit coverage for the pieces the sparse matrix backend is built from
(docs/performance.md §8):

- the homogeneous action kernels in :mod:`repro.ctmc.transient` —
  uniformization on matvecs and ``expm_multiply`` — against the dense
  ``expm`` reference, for dense and CSR inputs, single vectors and
  batches;
- :class:`repro.ctmc.propagators.SparseActionPropagator` — left/right
  window actions, densification, batched ``apply_many``, Richardson
  defect control and its refinement-cap failure mode — against exact
  per-window Kolmogorov solves of the same inhomogeneous chain;
- the memory guards of :func:`repro.ctmc.generator.build_generator` and
  :func:`repro.ctmc.inhomogeneous.solve_forward_kolmogorov` that make
  the dense path refuse (rather than thrash) exactly where the sparse
  path is the intended tool.
"""

import numpy as np
import pytest
import scipy.sparse

from repro.ctmc.generator import build_generator, build_sparse_generator
from repro.ctmc.inhomogeneous import (
    TransitionMatrixPropagator,
    solve_forward_kolmogorov,
)
from repro.ctmc.propagators import SparseActionPropagator
from repro.ctmc.transient import (
    poisson_truncation_point,
    transient_distribution,
    transient_distribution_expm_multiply,
    transient_distribution_uniformization,
    transient_matrix_expm,
)
from repro.exceptions import (
    BudgetExceededError,
    ModelError,
    NumericalError,
)
from repro.resilience import Budget

K = 6

#: A birth-death rate mapping with uneven rates (nontrivial structure).
RATES = {(i, i + 1): 0.7 + 0.1 * i for i in range(K - 1)}
RATES.update({(i + 1, i): 1.0 + 0.2 * i for i in range(K - 1)})
RATES[(0, K - 1)] = 0.05  # one long-range jump so Q is not tridiagonal


def _dense_q() -> np.ndarray:
    return build_generator(K, RATES)


def _sparse_q() -> scipy.sparse.csr_matrix:
    return build_sparse_generator(K, RATES)


def _distribution() -> np.ndarray:
    w = np.linspace(1.0, 2.0, K)
    return w / w.sum()


class TestActionKernels:
    """initial @ expm(Q t) without ever forming expm(Q t)."""

    @pytest.mark.parametrize("as_sparse", [False, True])
    @pytest.mark.parametrize(
        "kernel",
        [
            transient_distribution_uniformization,
            transient_distribution_expm_multiply,
        ],
    )
    def test_matches_dense_expm(self, kernel, as_sparse):
        q = _sparse_q() if as_sparse else _dense_q()
        reference = _distribution() @ transient_matrix_expm(_dense_q(), 0.8)
        result = kernel(_distribution(), q, 0.8)
        np.testing.assert_allclose(result, reference, atol=1e-10)

    @pytest.mark.parametrize(
        "kernel",
        [
            transient_distribution_uniformization,
            transient_distribution_expm_multiply,
        ],
    )
    def test_batch_rows_match_single_rows(self, kernel):
        batch = np.vstack([np.eye(K), _distribution()[None, :]])
        out = kernel(batch, _sparse_q(), 0.6)
        assert out.shape == batch.shape
        for row_in, row_out in zip(batch, out):
            np.testing.assert_allclose(
                kernel(row_in, _sparse_q(), 0.6), row_out, atol=1e-12
            )

    @pytest.mark.parametrize(
        "kernel",
        [
            transient_distribution_uniformization,
            transient_distribution_expm_multiply,
        ],
    )
    def test_time_zero_is_identity_copy(self, kernel):
        initial = _distribution()
        out = kernel(initial, _sparse_q(), 0.0)
        np.testing.assert_array_equal(out, initial)
        assert out is not initial

    @pytest.mark.parametrize(
        "kernel",
        [
            transient_distribution_uniformization,
            transient_distribution_expm_multiply,
        ],
    )
    def test_negative_time_rejected(self, kernel):
        with pytest.raises(ModelError):
            kernel(_distribution(), _sparse_q(), -0.1)

    def test_dispatch_selects_action_kernels(self):
        reference = _distribution() @ transient_matrix_expm(_dense_q(), 0.5)
        for method in ("expm_multiply", "uniformization"):
            out = transient_distribution(
                _distribution(), _sparse_q(), 0.5, method=method
            )
            np.testing.assert_allclose(out, reference, atol=1e-10)

    def test_mass_conserved(self):
        out = transient_distribution_uniformization(
            _distribution(), _sparse_q(), 2.5
        )
        assert out.sum() == pytest.approx(1.0, abs=1e-10)
        assert np.all(out >= -1e-12)

    def test_poisson_truncation_bounds_tail(self):
        from scipy.stats import poisson

        for lam_t in (0.3, 5.0, 40.0, 900.0):
            n = poisson_truncation_point(lam_t, 1e-9)
            # Terms 0..n are summed, so the neglected tail is P(X > n).
            assert poisson.sf(n, lam_t) <= 1e-9 * 1.01


def _q_of_t_dense(t: float) -> np.ndarray:
    """Inhomogeneous chain: rates breathe on an O(1) timescale."""
    scale = 1.0 + 0.5 * np.sin(t)
    q = _dense_q().copy()
    off = q - np.diag(np.diag(q))
    off *= scale
    np.fill_diagonal(off, -off.sum(axis=1))
    return off


def _q_of_t_sparse(t: float) -> scipy.sparse.csr_matrix:
    return scipy.sparse.csr_matrix(_q_of_t_dense(t))


class TestSparseActionPropagator:
    def _engine(self, **kwargs) -> SparseActionPropagator:
        kwargs.setdefault("tol", 1e-8)
        return SparseActionPropagator(_q_of_t_sparse, **kwargs)

    def _reference(self, a: float, b: float) -> np.ndarray:
        return solve_forward_kolmogorov(
            _q_of_t_dense, a, b - a, rtol=1e-11, atol=1e-13
        )

    def test_rejects_dense_generator_function(self):
        with pytest.raises(ModelError, match="sparse generator function"):
            SparseActionPropagator(_q_of_t_dense)

    def test_right_action_matches_reference(self):
        engine = self._engine()
        v = np.zeros(K)
        v[-1] = 1.0
        result = engine.apply(v, 0.3, 1.7, side="right")
        np.testing.assert_allclose(
            result, self._reference(0.3, 1.7) @ v, atol=1e-7
        )

    def test_left_action_matches_reference(self):
        engine = self._engine()
        result = engine.apply(_distribution(), 0.0, 2.0, side="left")
        np.testing.assert_allclose(
            result, _distribution() @ self._reference(0.0, 2.0), atol=1e-7
        )

    def test_propagate_densifies_to_reference(self):
        engine = self._engine()
        pi = engine.propagate(0.5, 1.5)
        assert isinstance(pi, np.ndarray)
        np.testing.assert_allclose(pi, self._reference(0.5, 1.5), atol=1e-7)
        # Rows of a transient matrix are distributions.
        np.testing.assert_allclose(pi.sum(axis=1), 1.0, atol=1e-9)

    def test_apply_many_matches_individual_applies(self):
        engine = self._engine()
        ts = np.array([0.0, 0.4, 1.1])
        v = np.zeros(K)
        v[2] = 1.0
        batched = engine.apply_many(ts, 0.9, v, side="right")
        assert batched.shape == (len(ts), K)
        for t, row in zip(ts, batched):
            np.testing.assert_allclose(
                row, engine.apply(v, t, t + 0.9, side="right"), atol=1e-9
            )

    def test_refinement_cap_raises_numerical_error(self):
        engine = self._engine(tol=1e-15, max_refinements=0, initial_cells=1)
        with pytest.raises(NumericalError, match="dense rung"):
            engine.apply(_distribution(), 0.0, 3.0, side="left")

    def test_propagate_densification_is_budget_guarded(self):
        # 2 * K * K * 8 bytes ≈ 576 B; a ~0.0001 MB guard must refuse it.
        engine = self._engine(budget=Budget(max_memory_mb=1e-4))
        with pytest.raises(BudgetExceededError):
            engine.propagate(0.0, 1.0)


class TestDenseMemoryGuards:
    """The dense paths refuse exactly where sparse is the intended tool."""

    def test_build_generator_guard_trips_before_allocation(self):
        rates = {(0, 1): 1.0, (1, 0): 1.0}
        with pytest.raises(BudgetExceededError):
            build_generator(4096, rates, budget=Budget(max_memory_mb=32.0))
        # The same mapping builds fine sparsely or without a guard.
        q = build_sparse_generator(4096, rates)
        assert q.shape == (4096, 4096)
        build_generator(64, rates, budget=Budget(max_memory_mb=32.0))

    def test_solve_forward_kolmogorov_guard(self):
        def q_of_t(t: float) -> np.ndarray:
            # 1024 states: the stacked-ODE workspace estimate is
            # 1024^2 * 8 * 8 = 64 MB, over a 32 MB guard.
            q = np.zeros((1024, 1024))
            q[0, 1] = 1.0
            q[0, 0] = -1.0
            return q

        with pytest.raises(BudgetExceededError):
            solve_forward_kolmogorov(
                q_of_t, 0.0, 1.0, budget=Budget(max_memory_mb=32.0)
            )

    def test_transition_matrix_propagator_guard(self):
        def q_of_t(t: float) -> np.ndarray:
            q = np.zeros((1024, 1024))
            q[0, 1] = 1.0
            q[0, 0] = -1.0
            return q

        with pytest.raises(BudgetExceededError):
            TransitionMatrixPropagator(
                q_of_t,
                window=1.0,
                t0=0.0,
                horizon=2.0,
                budget=Budget(max_memory_mb=32.0),
            )
