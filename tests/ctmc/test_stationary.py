"""Tests for stationary distributions of homogeneous chains."""

import numpy as np
import pytest

from repro.ctmc.generator import build_generator
from repro.ctmc.stationary import (
    stationary_distribution,
    stationary_distribution_dtmc,
)
from repro.ctmc.transient import transient_matrix_expm
from repro.exceptions import SteadyStateError


class TestStationaryCtmc:
    def test_birth_death_chain_analytic(self):
        # Birth rate b, death rate d: pi_i ∝ (b/d)^i.
        b, d = 1.0, 2.0
        q = build_generator(
            3, {(0, 1): b, (1, 2): b, (1, 0): d, (2, 1): d}
        )
        pi = stationary_distribution(q)
        rho = b / d
        expected = np.array([1.0, rho, rho**2])
        expected /= expected.sum()
        assert np.allclose(pi, expected, atol=1e-10)

    def test_is_left_null_vector(self):
        q = build_generator(
            4,
            {(0, 1): 0.3, (1, 2): 0.7, (2, 3): 0.1, (3, 0): 0.9, (1, 0): 0.2},
        )
        pi = stationary_distribution(q)
        assert np.allclose(pi @ q, 0.0, atol=1e-9)
        assert pi.sum() == pytest.approx(1.0)

    def test_matches_long_run_transient(self):
        q = build_generator(
            3, {(0, 1): 1.0, (1, 0): 0.5, (1, 2): 0.3, (2, 0): 0.4}
        )
        pi = stationary_distribution(q)
        long_run = transient_matrix_expm(q, 200.0)[0]
        assert np.allclose(pi, long_run, atol=1e-8)

    def test_absorbing_state(self):
        q = build_generator(2, {(0, 1): 1.0})
        pi = stationary_distribution(q)
        assert np.allclose(pi, [0.0, 1.0], atol=1e-9)

    def test_reducible_chain_not_unique(self):
        # Two disconnected components: no unique stationary distribution.
        q = build_generator(4, {(0, 1): 1.0, (1, 0): 1.0, (2, 3): 1.0, (3, 2): 1.0})
        with pytest.raises(SteadyStateError):
            stationary_distribution(q)

    def test_reducible_chain_allowed_when_not_checking(self):
        q = build_generator(4, {(0, 1): 1.0, (1, 0): 1.0, (2, 3): 1.0, (3, 2): 1.0})
        pi = stationary_distribution(q, check_unique=False)
        assert pi.sum() == pytest.approx(1.0)


class TestStationaryDtmc:
    def test_two_state_chain(self):
        p = np.array([[0.9, 0.1], [0.3, 0.7]])
        pi = stationary_distribution_dtmc(p)
        # detailed balance: pi0 * 0.1 = pi1 * 0.3
        assert pi[0] == pytest.approx(0.75)
        assert pi[1] == pytest.approx(0.25)

    def test_invariance(self):
        rng = np.random.default_rng(3)
        raw = rng.random((4, 4)) + 0.05
        p = raw / raw.sum(axis=1, keepdims=True)
        pi = stationary_distribution_dtmc(p)
        assert np.allclose(pi @ p, pi, atol=1e-9)
