"""Tests for homogeneous transient analysis (expm vs uniformization)."""

import numpy as np
import pytest

from repro.ctmc.generator import build_generator
from repro.ctmc.transient import (
    poisson_truncation_point,
    transient_distribution,
    transient_matrix,
    transient_matrix_expm,
    transient_matrix_uniformization,
)
from repro.exceptions import ModelError, NumericalError


@pytest.fixture
def q() -> np.ndarray:
    return build_generator(
        3, {(0, 1): 1.0, (1, 0): 0.5, (1, 2): 0.3, (2, 1): 0.2}
    )


class TestExpm:
    def test_zero_time_is_identity(self, q):
        assert np.allclose(transient_matrix_expm(q, 0.0), np.eye(3))

    def test_rows_are_distributions(self, q):
        pi = transient_matrix_expm(q, 3.0)
        assert np.all(pi >= -1e-12)
        assert np.allclose(pi.sum(axis=1), 1.0)

    def test_semigroup_property(self, q):
        pi1 = transient_matrix_expm(q, 1.0)
        pi2 = transient_matrix_expm(q, 2.0)
        assert np.allclose(pi1 @ pi1, pi2, atol=1e-10)

    def test_negative_time_rejected(self, q):
        with pytest.raises(ModelError):
            transient_matrix_expm(q, -1.0)


class TestUniformization:
    def test_matches_expm(self, q):
        for t in (0.1, 1.0, 5.0, 20.0):
            a = transient_matrix_expm(q, t)
            b = transient_matrix_uniformization(q, t, epsilon=1e-13)
            assert np.allclose(a, b, atol=1e-9), f"mismatch at t={t}"

    def test_zero_generator(self):
        q0 = np.zeros((2, 2))
        assert np.allclose(
            transient_matrix_uniformization(q0, 5.0), np.eye(2)
        )

    def test_truncation_error_bounded(self, q):
        coarse = transient_matrix_uniformization(q, 2.0, epsilon=1e-3)
        fine = transient_matrix_uniformization(q, 2.0, epsilon=1e-13)
        # Coarse truncation loses at most epsilon of mass.
        assert np.all(fine - coarse >= -1e-12)
        assert np.abs(coarse - fine).max() < 1e-3


class TestPoissonTruncation:
    def test_zero_lambda(self):
        assert poisson_truncation_point(0.0, 1e-6) == 0

    def test_grows_with_lambda(self):
        n_small = poisson_truncation_point(1.0, 1e-9)
        n_large = poisson_truncation_point(50.0, 1e-9)
        assert n_large > n_small > 0

    def test_covers_mass(self):
        import math

        lam = 7.5
        n = poisson_truncation_point(lam, 1e-9)
        mass = sum(
            math.exp(-lam) * lam**k / math.factorial(k) for k in range(n + 1)
        )
        assert mass >= 1.0 - 1e-9

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ModelError):
            poisson_truncation_point(1.0, 2.0)

    def test_rejects_negative_lambda(self):
        with pytest.raises(ModelError):
            poisson_truncation_point(-1.0, 1e-6)


class TestDispatch:
    def test_methods_agree(self, q):
        a = transient_matrix(q, 1.5, method="expm")
        b = transient_matrix(q, 1.5, method="uniformization")
        assert np.allclose(a, b, atol=1e-9)

    def test_unknown_method(self, q):
        with pytest.raises(NumericalError):
            transient_matrix(q, 1.0, method="magic")

    def test_distribution_propagation(self, q):
        initial = np.array([1.0, 0.0, 0.0])
        dist = transient_distribution(initial, q, 2.0)
        assert dist.shape == (3,)
        assert dist.sum() == pytest.approx(1.0)
        assert dist[1] > 0  # mass has moved
