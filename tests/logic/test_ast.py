"""Tests for the formula AST (Definitions 3 and 5)."""

import math

import pytest

from repro.exceptions import FormulaError
from repro.logic.ast import (
    And,
    Atomic,
    Bound,
    CslTrue,
    Expectation,
    ExpectedProbability,
    ExpectedSteadyState,
    MfAnd,
    MfNot,
    MfTrue,
    Next,
    Not,
    Or,
    Probability,
    SteadyState,
    TimeInterval,
    Until,
    atomic_propositions,
    is_time_independent,
    until_nesting_depth,
)


class TestBound:
    def test_holds_semantics(self):
        assert Bound("<", 0.5).holds(0.4)
        assert not Bound("<", 0.5).holds(0.5)
        assert Bound("<=", 0.5).holds(0.5)
        assert Bound(">", 0.5).holds(0.6)
        assert not Bound(">", 0.5).holds(0.5)
        assert Bound(">=", 0.5).holds(0.5)

    def test_is_upper_bound(self):
        assert Bound("<", 0.1).is_upper_bound
        assert Bound("<=", 0.1).is_upper_bound
        assert not Bound(">", 0.1).is_upper_bound

    def test_rejects_bad_comparator(self):
        with pytest.raises(FormulaError):
            Bound("==", 0.5)

    def test_rejects_out_of_range_threshold(self):
        with pytest.raises(FormulaError):
            Bound("<", 1.5)
        with pytest.raises(FormulaError):
            Bound("<", -0.1)

    def test_str(self):
        assert str(Bound(">=", 0.1)) == ">=0.1"


class TestTimeInterval:
    def test_bounded(self):
        interval = TimeInterval(1.0, 2.5)
        assert interval.is_bounded
        assert interval.duration == 1.5

    def test_unbounded(self):
        interval = TimeInterval(0.0, math.inf)
        assert not interval.is_bounded

    def test_rejects_negative_lower(self):
        with pytest.raises(FormulaError):
            TimeInterval(-1.0, 2.0)

    def test_rejects_empty(self):
        with pytest.raises(FormulaError):
            TimeInterval(3.0, 2.0)

    def test_point_interval_allowed(self):
        assert TimeInterval(2.0, 2.0).duration == 0.0

    def test_str(self):
        assert str(TimeInterval(0, 5)) == "[0,5]"
        assert "inf" in str(TimeInterval(0, math.inf))


class TestEqualityAndHashing:
    def test_structural_equality(self):
        a = Probability(Bound("<", 0.3), Until(TimeInterval(0, 1), Atomic("x"), Atomic("y")))
        b = Probability(Bound("<", 0.3), Until(TimeInterval(0, 1), Atomic("x"), Atomic("y")))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert Atomic("x") != Atomic("y")
        assert Not(CslTrue()) != CslTrue()

    def test_usable_as_dict_key(self):
        cache = {Atomic("x"): 1}
        assert cache[Atomic("x")] == 1


class TestAtomic:
    def test_rejects_empty_name(self):
        with pytest.raises(FormulaError):
            Atomic("")

    def test_rejects_bad_characters(self):
        with pytest.raises(FormulaError):
            Atomic("has space")

    def test_underscores_allowed(self):
        assert Atomic("not_infected").name == "not_infected"


class TestWalkers:
    @pytest.fixture
    def nested(self):
        inner = Probability(
            Bound(">", 0.8),
            Until(TimeInterval(0, 0.5), CslTrue(), Atomic("infected")),
        )
        outer = Probability(
            Bound(">", 0.9),
            Until(TimeInterval(0, 15), Atomic("infected"), inner),
        )
        return MfAnd(
            Expectation(Bound(">", 0.8), outer),
            Expectation(Bound("<", 0.1), Atomic("active")),
        )

    def test_atomic_propositions(self, nested):
        assert atomic_propositions(nested) == frozenset({"infected", "active"})

    def test_until_nesting_depth(self, nested):
        assert until_nesting_depth(nested) == 2
        assert until_nesting_depth(Atomic("x")) == 0
        assert until_nesting_depth(MfTrue()) == 0
        simple = ExpectedProbability(
            Bound("<", 0.4),
            Until(TimeInterval(0, 5), Atomic("a"), Atomic("b")),
        )
        assert until_nesting_depth(simple) == 1

    def test_next_depth_counts_operand(self):
        formula = Probability(
            Bound("<", 0.5), Next(TimeInterval(0, 1), Atomic("a"))
        )
        assert until_nesting_depth(formula) == 1

    def test_time_independence(self):
        assert is_time_independent(And(Atomic("a"), Not(Atomic("b"))))
        assert is_time_independent(Or(CslTrue(), Atomic("a")))
        timed = Probability(
            Bound("<", 0.5),
            Until(TimeInterval(0, 1), CslTrue(), Atomic("a")),
        )
        assert not is_time_independent(timed)
        assert not is_time_independent(SteadyState(Bound("<", 0.5), Atomic("a")))

    def test_es_counts_operand_depth(self):
        formula = ExpectedSteadyState(Bound("<", 0.5), Atomic("a"))
        assert until_nesting_depth(formula) == 0
        assert atomic_propositions(formula) == frozenset({"a"})

    def test_mfnot_walker(self):
        formula = MfNot(Expectation(Bound("<", 0.5), Atomic("z")))
        assert atomic_propositions(formula) == frozenset({"z"})
