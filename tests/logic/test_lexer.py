"""Tests for the tokenizer."""

import pytest

from repro.exceptions import ParseError
from repro.logic.lexer import (
    KIND_END,
    KIND_IDENT,
    KIND_NUMBER,
    KIND_RESERVED,
    KIND_SYMBOL,
    tokenize,
)


class TestTokenKinds:
    def test_reserved_words(self):
        tokens = tokenize("tt ff P S X U E ES EP inf")[:-1]  # drop END
        assert all(tok.kind == KIND_RESERVED for tok in tokens)

    def test_identifiers(self):
        tokens = tokenize("infected not_infected x1")
        assert [t.kind for t in tokens[:-1]] == [KIND_IDENT] * 3

    def test_numbers(self):
        tokens = tokenize("0.5 14.5412 1e-3 2")
        assert [t.kind for t in tokens[:-1]] == [KIND_NUMBER] * 4
        assert float(tokens[1].text) == 14.5412

    def test_symbols_including_two_char(self):
        tokens = tokenize("<= >= < > ! & | ( ) [ ] ,")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["<=", ">=", "<", ">", "!", "&", "|", "(", ")", "[", "]", ","]
        assert all(t.kind == KIND_SYMBOL for t in tokens[:-1])

    def test_end_token(self):
        tokens = tokenize("a")
        assert tokens[-1].kind == KIND_END

    def test_positions(self):
        tokens = tokenize("ab  cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 4

    def test_whitespace_only(self):
        tokens = tokenize("   \t\n ")
        assert len(tokens) == 1
        assert tokens[0].kind == KIND_END


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError) as info:
            tokenize("a $ b")
        assert info.value.position == 2

    def test_malformed_number(self):
        with pytest.raises(ParseError):
            tokenize("0.5.5")

    def test_case_sensitivity(self):
        # lowercase p is an identifier, not the P operator
        tokens = tokenize("p")
        assert tokens[0].kind == KIND_IDENT
