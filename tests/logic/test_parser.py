"""Tests for the CSL / MF-CSL parser."""

import math

import pytest

from repro.exceptions import ParseError
from repro.logic.ast import (
    And,
    Atomic,
    Bound,
    CslTrue,
    Expectation,
    ExpectedProbability,
    ExpectedSteadyState,
    MfAnd,
    MfNot,
    MfOr,
    MfTrue,
    Next,
    Not,
    Or,
    Probability,
    SteadyState,
    TimeInterval,
    Until,
)
from repro.logic.parser import parse_csl, parse_mfcsl, parse_path


class TestCslParsing:
    def test_tt(self):
        assert parse_csl("tt") == CslTrue()

    def test_ff_desugars(self):
        assert parse_csl("ff") == Not(CslTrue())

    def test_atomic(self):
        assert parse_csl("not_infected") == Atomic("not_infected")

    def test_negation(self):
        assert parse_csl("!infected") == Not(Atomic("infected"))

    def test_double_negation(self):
        assert parse_csl("!!x") == Not(Not(Atomic("x")))

    def test_conjunction_left_associative(self):
        assert parse_csl("a & b & c") == And(And(Atomic("a"), Atomic("b")), Atomic("c"))

    def test_precedence_not_over_and_over_or(self):
        assert parse_csl("!a & b | c") == Or(
            And(Not(Atomic("a")), Atomic("b")), Atomic("c")
        )

    def test_parentheses(self):
        assert parse_csl("a & (b | c)") == And(
            Atomic("a"), Or(Atomic("b"), Atomic("c"))
        )

    def test_probability_until(self):
        formula = parse_csl("P[<0.3](a U[0,1] b)")
        assert formula == Probability(
            Bound("<", 0.3),
            Until(TimeInterval(0, 1), Atomic("a"), Atomic("b")),
        )

    def test_probability_next(self):
        formula = parse_csl("P[>=0.5](X[1,2] a)")
        assert formula == Probability(
            Bound(">=", 0.5), Next(TimeInterval(1, 2), Atomic("a"))
        )

    def test_next_without_interval_is_unbounded(self):
        formula = parse_csl("P[>0.1](X a)")
        assert isinstance(formula.path, Next)
        assert formula.path.interval.upper == math.inf

    def test_steady_state(self):
        assert parse_csl("S[>0.9](up)") == SteadyState(
            Bound(">", 0.9), Atomic("up")
        )

    def test_nested_paper_formula(self):
        text = "P[>0.9](infected U[0,15] (P[>0.8](tt U[0,0.5] infected)))"
        formula = parse_csl(text)
        assert isinstance(formula, Probability)
        inner = formula.path.right
        assert isinstance(inner, Probability)
        assert inner.path.interval == TimeInterval(0, 0.5)

    def test_interval_with_inf(self):
        formula = parse_csl("P[>0](a U[0,inf] b)")
        assert not formula.path.interval.is_bounded

    def test_until_without_interval_is_unbounded(self):
        formula = parse_csl("P[>0](a U b)")
        assert formula.path.interval.upper == math.inf


class TestMfcslParsing:
    def test_tt_and_ff(self):
        assert parse_mfcsl("tt") == MfTrue()
        assert parse_mfcsl("ff") == MfNot(MfTrue())

    def test_expectation(self):
        assert parse_mfcsl("E[>0.8](infected)") == Expectation(
            Bound(">", 0.8), Atomic("infected")
        )

    def test_expected_steady_state(self):
        assert parse_mfcsl("ES[>=0.1](infected)") == ExpectedSteadyState(
            Bound(">=", 0.1), Atomic("infected")
        )

    def test_expected_probability(self):
        formula = parse_mfcsl("EP[<0.4](infected U[0,5] not_infected)")
        assert formula == ExpectedProbability(
            Bound("<", 0.4),
            Until(TimeInterval(0, 5), Atomic("infected"), Atomic("not_infected")),
        )

    def test_boolean_structure(self):
        formula = parse_mfcsl("!E[<0.1](a) & tt | E[>0.9](b)")
        assert isinstance(formula, MfOr)
        assert isinstance(formula.left, MfAnd)
        assert isinstance(formula.left.left, MfNot)

    def test_paper_example_2_conjunction(self):
        text = (
            "E[>0.8](P[>0.9](infected U[0,15] "
            "(P[>0.8](tt U[0,0.5] infected)))) & E[<0.1](active)"
        )
        formula = parse_mfcsl(text)
        assert isinstance(formula, MfAnd)
        assert isinstance(formula.right, Expectation)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "&",
            "a &",
            "P[<0.3]",
            "P[0.3](a U[0,1] b)",
            "P[<0.3](a U[0,1])",
            "P[<2](a U[0,1] b)",  # threshold out of range
            "P[<0.3](a U[5,1] b)",  # empty interval
            "a b",
            "E[<0.5](a",
            "EP[<0.5](a)",  # EP needs a path formula
            "P[<0.5](X)",
        ],
    )
    def test_rejects_malformed_csl_or_mfcsl(self, text):
        with pytest.raises(ParseError):
            # Try both entry points; each must reject.
            try:
                parse_csl(text)
            except ParseError:
                parse_mfcsl(text)
                return
            parse_mfcsl(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_csl("a & & b")
        assert info.value.position is not None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_mfcsl("E[<0.5](a) extra")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_csl("a @ b")


class TestPathEntryPoint:
    def test_until(self):
        path = parse_path("a U[0,3] b")
        assert isinstance(path, Until)

    def test_next(self):
        path = parse_path("X[0,1] b")
        assert isinstance(path, Next)

    def test_rejects_state_formula(self):
        with pytest.raises(ParseError):
            parse_path("a & b")
