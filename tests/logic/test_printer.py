"""Tests for the pretty-printer and parse/print round-trips."""

import pytest

from repro.exceptions import FormulaError
from repro.logic.ast import (
    Atomic,
    Bound,
    Next,
    Probability,
    TimeInterval,
)
from repro.logic.parser import parse_csl, parse_mfcsl
from repro.logic.printer import format_formula

CSL_EXAMPLES = [
    "tt",
    "infected",
    "!infected",
    "a & b",
    "a | b & !c",
    "P[<0.3](not_infected U[0,1] infected)",
    "P[>=0.5](X[0,2] active)",
    "S[>0.9](up)",
    "P[>0.9](infected U[0,15] (P[>0.8](tt U[0,0.5] infected)))",
    "S[<=0.2](P[>0.1](a U[1,4] b))",
]

MFCSL_EXAMPLES = [
    "tt",
    "E[>0.8](infected)",
    "ES[>=0.1](infected)",
    "EP[<0.4](infected U[0,5] not_infected)",
    "!E[<0.1](a) & E[>0.9](b) | tt",
    "E[>0.8](P[>0.9](infected U[0,15] (P[>0.8](tt U[0,0.5] infected))))"
    " & E[<0.1](active)",
    "EP[<0.5](X[0,1] infected)",
]


class TestRoundTrip:
    @pytest.mark.parametrize("text", CSL_EXAMPLES)
    def test_csl_round_trip(self, text):
        formula = parse_csl(text)
        assert parse_csl(format_formula(formula)) == formula

    @pytest.mark.parametrize("text", MFCSL_EXAMPLES)
    def test_mfcsl_round_trip(self, text):
        formula = parse_mfcsl(text)
        assert parse_mfcsl(format_formula(formula)) == formula

    def test_double_round_trip_is_stable(self):
        formula = parse_mfcsl(MFCSL_EXAMPLES[5])
        once = format_formula(formula)
        twice = format_formula(parse_mfcsl(once))
        assert once == twice


class TestFormatting:
    def test_unbounded_interval_printed_as_inf(self):
        formula = Probability(
            Bound(">", 0.0),
            Next(TimeInterval(0.0, float("inf")), Atomic("a")),
        )
        assert "inf" in format_formula(formula)

    def test_unknown_node_rejected(self):
        with pytest.raises(FormulaError):
            format_formula(object())

    def test_str_dunders_are_parseable(self):
        formula = parse_csl("P[<0.3](a U[0,1] b)")
        assert parse_csl(str(formula)) == formula
