"""Unit tests for the formula-optimization pass (repro.logic.rewrite)."""

import pytest

from repro.exceptions import FormulaError
from repro.logic.ast import (
    And,
    Atomic,
    Bound,
    CslTrue,
    Expectation,
    ExpectedProbability,
    ExpectedSteadyState,
    MfAnd,
    MfNot,
    MfOr,
    MfTrue,
    Next,
    Not,
    Or,
    Probability,
    SteadyState,
    TimeInterval,
    Until,
)
from repro.logic.parser import parse_csl, parse_mfcsl
from repro.logic.rewrite import (
    REWRITE_RULES,
    RewriteReport,
    is_false,
    negate_bound,
    optimize,
)

A = Atomic("a")
B = Atomic("b")
I01 = TimeInterval(0.0, 1.0)
FF = Not(CslTrue())
MF_FF = MfNot(MfTrue())
E_A = Expectation(Bound(">", 0.5), A)
E_B = Expectation(Bound("<", 0.2), B)


class TestNegateBound:
    def test_all_comparators(self):
        assert negate_bound(Bound("<", 0.3)) == Bound(">=", 0.3)
        assert negate_bound(Bound("<=", 0.3)) == Bound(">", 0.3)
        assert negate_bound(Bound(">", 0.3)) == Bound("<=", 0.3)
        assert negate_bound(Bound(">=", 0.3)) == Bound("<", 0.3)

    def test_is_involution(self):
        for cmp_ in ("<", "<=", ">", ">="):
            b = Bound(cmp_, 0.7)
            assert negate_bound(negate_bound(b)) == b

    def test_pointwise_complement(self):
        for cmp_ in ("<", "<=", ">", ">="):
            b = Bound(cmp_, 0.5)
            nb = negate_bound(b)
            for v in (0.0, 0.25, 0.5, 0.75, 1.0):
                assert nb.holds(v) == (not b.holds(v))


class TestFold:
    def test_true_unit_of_and(self):
        f, rep = optimize(And(CslTrue(), A), ("fold",))
        assert f == A
        assert rep.folds == 1

    def test_false_absorbs_and(self):
        f, _ = optimize(MfAnd(MF_FF, E_A), ("fold",))
        assert f == MF_FF

    def test_true_absorbs_or(self):
        f, _ = optimize(MfOr(E_A, MfTrue()), ("fold",))
        assert f == MfTrue()

    def test_false_unit_of_or(self):
        f, _ = optimize(Or(FF, A), ("fold",))
        assert f == A

    def test_idempotence(self):
        f, _ = optimize(And(A, A), ("fold",))
        assert f == A
        f, _ = optimize(MfOr(E_A, E_A), ("fold",))
        assert f == E_A

    def test_complementary_operands(self):
        f, _ = optimize(And(A, Not(A)), ("fold",))
        assert is_false(f)
        f, _ = optimize(Or(Not(A), A), ("fold",))
        assert f == CslTrue()
        f, _ = optimize(MfAnd(E_A, MfNot(E_A)), ("fold",))
        assert is_false(f)

    def test_unsatisfiable_until_goal(self):
        # P>=0.1(a U ff) has probability exactly 0 -> constant false.
        f, _ = optimize(
            Probability(Bound(">=", 0.1), Until(I01, A, FF)), ("fold",)
        )
        assert is_false(f)
        # ...while P<0.1 of the same path is constant true.
        f, _ = optimize(
            Probability(Bound("<", 0.1), Until(I01, A, FF)), ("fold",)
        )
        assert f == CslTrue()

    def test_unsatisfiable_next(self):
        f, _ = optimize(
            ExpectedProbability(Bound("<=", 0.3), Next(I01, FF)), ("fold",)
        )
        assert f == MfTrue()

    def test_false_left_operand_of_until_not_folded(self):
        # ff U[0,1] a is convention-dependent at the window's left edge,
        # so it must survive the pass untouched.
        path = Until(I01, FF, A)
        f, rep = optimize(Probability(Bound(">", 0.5), path), ("fold",))
        assert f == Probability(Bound(">", 0.5), path)
        assert rep.folds == 0


class TestNegation:
    def test_double_negation(self):
        f, rep = optimize(Not(Not(A)), ("negation",))
        assert f == A
        assert rep.negations == 1
        f, _ = optimize(MfNot(MfNot(E_A)), ("negation",))
        assert f == E_A

    def test_de_morgan_only_when_it_reduces(self):
        # Both operands negated: rewrite fires.
        f, _ = optimize(Not(And(Not(A), Not(B))), ("negation",))
        assert f == Or(A, B)
        f, _ = optimize(MfNot(MfOr(MfNot(E_A), MfNot(E_B))), ("negation",))
        assert f == MfAnd(E_A, E_B)
        # Mixed operands: leave the formula alone (De Morgan would add
        # negations, not remove them).
        g = Not(And(Not(A), B))
        f, rep = optimize(g, ("negation",))
        assert f == g
        assert rep.negations == 0

    def test_bound_pushing(self):
        f, _ = optimize(Not(Probability(Bound("<", 0.3), Until(I01, A, B))),
                        ("negation",))
        assert f == Probability(Bound(">=", 0.3), Until(I01, A, B))
        f, _ = optimize(Not(SteadyState(Bound(">=", 0.6), A)), ("negation",))
        assert f == SteadyState(Bound("<", 0.6), A)
        f, _ = optimize(MfNot(E_A), ("negation",))
        assert f == Expectation(Bound("<=", 0.5), A)
        f, _ = optimize(
            MfNot(ExpectedSteadyState(Bound("<=", 0.4), A)), ("negation",)
        )
        assert f == ExpectedSteadyState(Bound(">", 0.4), A)
        f, _ = optimize(
            MfNot(ExpectedProbability(Bound(">", 0.1), Next(I01, A))),
            ("negation",),
        )
        assert f == ExpectedProbability(Bound("<=", 0.1), Next(I01, A))


class TestVacuity:
    @pytest.mark.parametrize(
        "bound, verdict",
        [
            (Bound(">=", 0.0), True),
            (Bound("<=", 1.0), True),
            (Bound("<", 0.0), False),
            (Bound(">", 1.0), False),
        ],
    )
    def test_trivially_decided_bounds(self, bound, verdict):
        f, rep = optimize(Expectation(bound, A), ("vacuity",))
        assert (f == MfTrue()) is verdict
        assert is_false(f) is (not verdict)
        assert rep.vacuities == 1
        f, _ = optimize(Probability(bound, Until(I01, A, B)), ("vacuity",))
        assert (f == CslTrue()) is verdict

    def test_informative_bounds_survive(self):
        for bound in (Bound(">=", 0.1), Bound("<", 1.0), Bound(">", 0.0)):
            f, rep = optimize(Expectation(bound, A), ("vacuity",))
            assert f == Expectation(bound, A)
            assert rep.vacuities == 0

    def test_vacuity_applies_inside_nested_operators(self):
        g = parse_mfcsl("E[>0.5](P[>=0](a U[0,1] b))")
        f, _ = optimize(g, ("vacuity", "fold"))
        # inner P>=0 -> tt, then E[>0.5](tt) is E of a tautology: stays
        # as an Expectation over tt (its value is 1, not folded here).
        assert f == Expectation(Bound(">", 0.5), CslTrue())


class TestDedup:
    def test_repeated_subtrees_are_shared(self):
        g = MfAnd(MfOr(E_A, E_B), MfOr(E_A, E_B))
        f, rep = optimize(g, ("dedup",))
        # Idempotence is a fold rule; with only dedup the tree shape
        # stays, but both children are the identical object.
        assert isinstance(f, MfAnd)
        assert f.left is f.right
        assert rep.shared >= 1

    def test_no_sharing_without_dedup(self):
        g = MfAnd(MfOr(E_A, E_B), MfOr(E_A, E_B))
        f, rep = optimize(g, ("fold",))
        assert f == MfOr(E_A, E_B)  # idempotence fold collapses it
        g2 = MfAnd(MfOr(E_A, E_B), MfOr(E_B, E_A))
        f2, rep2 = optimize(g2, ())
        assert f2 is g2
        assert rep2.shared == 0

    def test_post_rewrite_duplicates_share(self):
        # The two operands differ as trees but simplify to the same
        # formula; the output interning makes them one object.
        g = MfAnd(MfNot(MfNot(E_A)), MfAnd(E_A, MfTrue()))
        f, _ = optimize(g, ("negation", "fold", "dedup"))
        assert f == E_A or (isinstance(f, MfAnd) and f.left is f.right)


class TestOptimizeApi:
    def test_unknown_rule_raises(self):
        with pytest.raises(FormulaError):
            optimize(E_A, ("fold", "bogus"))

    def test_no_rules_is_identity(self):
        g = MfNot(MfNot(E_A))
        f, rep = optimize(g, ())
        assert f is g
        assert rep.total == 0

    def test_default_enables_all_rules(self):
        f, _ = optimize(MfNot(MfNot(MfAnd(MfTrue(), E_A))))
        assert f == E_A

    def test_report_describe_and_total(self):
        rep = RewriteReport(folds=2, negations=1, vacuities=3, shared=4)
        assert rep.total == 10
        text = rep.describe()
        assert "2 folds" in text and "4 shared" in text

    def test_rule_names_constant(self):
        assert REWRITE_RULES == ("fold", "negation", "vacuity", "dedup")

    def test_parsed_and_constructed_agree(self):
        f1, _ = optimize(parse_csl("!!(a & tt)"))
        f2, _ = optimize(Not(Not(And(A, CslTrue()))))
        assert f1 == f2 == A
