"""Compiled generator fast path vs the interpreted oracle.

The compiled path (expression codegen + one-pass generator assembly)
must be *numerically indistinguishable* from the interpreted
per-transition tree walk: the property tests here assert agreement to
1e-12 across random occupancy vectors for every bundled model, plus
batch/scalar consistency and drift equality.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.meanfield.compiled import CompiledGenerator
from repro.meanfield.expressions import (
    Binary,
    Const,
    Expression,
    Occupancy,
    Time,
)
from repro.meanfield.overall_model import MeanFieldModel
from repro.models.botnet import botnet_model
from repro.models.diurnal import diurnal_virus_model
from repro.models.epidemic import sir_model, sis_model
from repro.models.gossip import gossip_model
from repro.models.load_balancing import load_balancing_model
from repro.models.virus import (
    SETTING_1,
    SETTING_2,
    virus_model,
    virus_model_declarative,
    virus_model_epidemiological,
)

TOL = 1e-12

MODEL_FACTORIES = {
    "virus": lambda: virus_model(SETTING_1),
    "virus_setting2": lambda: virus_model(SETTING_2),
    "virus_epidemiological": virus_model_epidemiological,
    "virus_declarative": virus_model_declarative,
    "botnet": botnet_model,
    "sis": sis_model,
    "sir": sir_model,
    "gossip": gossip_model,
    "load_balancing": load_balancing_model,
    "diurnal": diurnal_virus_model,
}


def random_occupancies(k: int, n: int, seed: int = 0) -> np.ndarray:
    """``n`` random interior points of the ``K``-simplex."""
    rng = np.random.default_rng(seed)
    return rng.dirichlet(np.ones(k), size=n)


@pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
def test_compiled_generator_matches_interpreted(name):
    model = MODEL_FACTORIES[name]()
    local = model.local
    compiled = local.compiled_generator()
    for i, m in enumerate(random_occupancies(local.num_states, 25, seed=7)):
        t = 0.8 * i  # exercise explicit time dependence where present
        expected = local.generator(m, t)
        np.testing.assert_allclose(
            compiled(m, t), expected, rtol=0.0, atol=TOL
        )


@pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
def test_batch_matches_scalar(name):
    model = MODEL_FACTORIES[name]()
    local = model.local
    compiled = local.compiled_generator()
    occupancies = random_occupancies(local.num_states, 12, seed=11)
    ts = np.linspace(0.0, 9.0, 12)
    batched = compiled.batch(occupancies, ts)
    assert batched.shape == (12, local.num_states, local.num_states)
    for i in range(12):
        np.testing.assert_allclose(
            batched[i], compiled(occupancies[i], ts[i]), rtol=0.0, atol=TOL
        )
    # Scalar time broadcasts across the batch.
    batched0 = compiled.batch(occupancies, 0.0)
    for i in range(12):
        np.testing.assert_allclose(
            batched0[i], compiled(occupancies[i], 0.0), rtol=0.0, atol=TOL
        )


@pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
def test_compiled_drift_matches_interpreted(name):
    model = MODEL_FACTORIES[name]()
    oracle = MeanFieldModel(model.local, compiled=False)
    for i, m in enumerate(random_occupancies(model.num_states, 10, seed=3)):
        t = 1.1 * i
        np.testing.assert_allclose(
            model.drift(t, m), oracle.drift(t, m), rtol=0.0, atol=TOL
        )


def test_generator_rows_sum_to_zero_batch():
    model = botnet_model()
    compiled = model.local.compiled_generator()
    occupancies = random_occupancies(model.num_states, 30, seed=5)
    batched = compiled.batch(occupancies)
    np.testing.assert_allclose(
        batched.sum(axis=2), 0.0, rtol=0.0, atol=1e-12
    )


def test_constant_rates_are_folded():
    model = virus_model(SETTING_1)
    compiled = model.local.compiled_generator()
    # Four of the five virus transitions are constants; only the
    # infection rate stays dynamic.
    assert compiled.num_constant == 4
    assert compiled.num_dynamic == 1


def test_declarative_model_uses_compiled_expressions():
    compiled = virus_model_declarative().local.compiled_generator()
    assert compiled.num_compiled == 1


def test_batch_shape_validation():
    compiled = virus_model(SETTING_1).local.compiled_generator()
    with pytest.raises(ModelError):
        compiled.batch(np.ones(3))  # 1-D is rejected; batch wants (B, K)


# ----------------------------------------------------------------------
# Random expression trees: compile() vs evaluate()
# ----------------------------------------------------------------------

MAX_INDEX = 2


def _leaves():
    return st.one_of(
        st.floats(
            min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False
        ).map(Const),
        st.integers(min_value=0, max_value=MAX_INDEX).map(Occupancy),
        st.just(Time()),
    )


def _combine(children):
    binary = st.tuples(
        st.sampled_from(["add", "sub", "mul", "min", "max"]), children, children
    ).map(lambda t: Binary(t[0], t[1], t[2]))
    guarded = st.tuples(children, children).map(
        lambda t: t[0].guarded_div(t[1])
    )
    square = children.map(lambda e: Binary("pow", e, Const(2)))
    return st.one_of(binary, guarded, square)


expressions = st.recursive(_leaves(), _combine, max_leaves=10)


@settings(max_examples=200, deadline=None)
@given(
    expr=expressions,
    weights=st.lists(
        st.floats(min_value=0.01, max_value=1.0),
        min_size=MAX_INDEX + 1,
        max_size=MAX_INDEX + 1,
    ),
    t=st.floats(min_value=0.0, max_value=50.0),
)
def test_compiled_expression_matches_evaluate(expr, weights, t):
    assert isinstance(expr, Expression)
    m = np.array(weights) / np.sum(weights)
    interpreted = expr(m, t)
    compiled = expr.compile()
    value = float(compiled(m, t))
    assert abs(value - interpreted) <= TOL * max(1.0, abs(interpreted))
    # The same closure evaluates a batch; row 0 must agree with scalar.
    batch = np.vstack([m, m[::-1]])
    batch_values = np.broadcast_to(
        np.asarray(compiled(batch, t), dtype=float), (2,)
    )
    assert abs(batch_values[0] - interpreted) <= TOL * max(1.0, abs(interpreted))
