"""Tests for the discrete-time mean-field layer."""

import numpy as np
import pytest

from repro.exceptions import InvalidStateError, ModelError
from repro.meanfield.discrete import DiscreteLocalModel, DiscreteMeanFieldModel


@pytest.fixture
def local() -> DiscreteLocalModel:
    """Discrete gossip-like model: informed fraction drives spreading."""
    return DiscreteLocalModel(
        states=("ignorant", "informed"),
        transitions={("ignorant", "informed"): lambda m: 0.5 * m[1]},
        labels={"ignorant": ["uninformed"], "informed": ["informed"]},
    )


@pytest.fixture
def model(local) -> DiscreteMeanFieldModel:
    return DiscreteMeanFieldModel(local)


class TestDiscreteLocalModel:
    def test_structure(self, local):
        assert local.num_states == 2
        assert local.index("informed") == 1
        assert local.states_with_label("informed") == frozenset({1})
        assert local.labels_of("ignorant") == frozenset({"uninformed"})

    def test_unknown_state(self, local):
        with pytest.raises(InvalidStateError):
            local.index("ghost")

    def test_matrix_is_stochastic(self, local):
        p = local.matrix(np.array([0.6, 0.4]))
        assert np.allclose(p.sum(axis=1), 1.0)
        assert p[0, 1] == pytest.approx(0.2)
        assert p[0, 0] == pytest.approx(0.8)
        assert p[1, 1] == 1.0

    def test_constant_probability_validated(self):
        with pytest.raises(ModelError):
            DiscreteLocalModel(("a", "b"), {("a", "b"): 1.5}, {})

    def test_overfull_row_raises_on_evaluation(self):
        local = DiscreteLocalModel(
            ("a", "b", "c"),
            {("a", "b"): lambda m: 0.8, ("a", "c"): lambda m: 0.8},
            {},
        )
        with pytest.raises(ModelError):
            local.matrix(np.array([1.0, 0.0, 0.0]))

    def test_duplicate_states_rejected(self):
        with pytest.raises(ModelError):
            DiscreteLocalModel(("a", "a"), {}, {})


class TestRecursion:
    def test_step_moves_mass(self, model):
        m1 = model.step(np.array([0.9, 0.1]))
        assert m1[1] > 0.1
        assert m1.sum() == pytest.approx(1.0)

    def test_iterate_shape(self, model):
        out = model.iterate(np.array([0.9, 0.1]), steps=10)
        assert out.shape == (11, 2)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_iterate_monotone_spread(self, model):
        out = model.iterate(np.array([0.9, 0.1]), steps=50)
        informed = out[:, 1]
        assert np.all(np.diff(informed) >= -1e-12)

    def test_matrices_along(self, model):
        iterates = model.iterate(np.array([0.9, 0.1]), steps=5)
        mats = model.matrices_along(iterates)
        assert len(mats) == 5
        for p in mats:
            assert np.allclose(p.sum(axis=1), 1.0)

    def test_fixed_point_everyone_informed(self, model):
        fp = model.fixed_point(np.array([0.9, 0.1]))
        assert fp[1] == pytest.approx(1.0, abs=1e-6)

    def test_fixed_point_no_spread_from_zero(self, model):
        fp = model.fixed_point(np.array([1.0, 0.0]))
        assert fp[1] == pytest.approx(0.0, abs=1e-12)

    def test_negative_steps_rejected(self, model):
        with pytest.raises(ModelError):
            model.iterate(np.array([0.5, 0.5]), steps=-1)

    def test_nonconvergent_raises(self):
        # Deterministic two-state flip-flop oscillates forever.
        local = DiscreteLocalModel(
            ("a", "b"),
            {("a", "b"): 1.0, ("b", "a"): 1.0},
            {},
        )
        model = DiscreteMeanFieldModel(local)
        with pytest.raises(ModelError):
            model.fixed_point(np.array([1.0, 0.0]), max_steps=100)
