"""Tests for the declarative rate-expression language."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.meanfield.expressions import (
    Binary,
    Const,
    GuardedDiv,
    Occupancy,
    Time,
    depends_on_time,
    from_dict,
    is_constant,
)

M = np.array([0.5, 0.3, 0.2])


class TestEvaluation:
    def test_const(self):
        assert Const(2.5)(M) == 2.5

    def test_occupancy(self):
        assert Occupancy(1)(M) == 0.3

    def test_time(self):
        assert Time()(M, 7.0) == 7.0
        assert Time()(M) == 0.0

    def test_arithmetic(self):
        expr = Const(2.0) * Occupancy(0) + Occupancy(2) - 0.1
        assert expr(M) == pytest.approx(2.0 * 0.5 + 0.2 - 0.1)

    def test_right_hand_operators(self):
        assert (1.0 + Occupancy(0))(M) == 1.5
        assert (2.0 * Occupancy(0))(M) == 1.0
        assert (1.0 - Occupancy(0))(M) == 0.5
        assert (1.0 / Occupancy(0))(M) == 2.0

    def test_power(self):
        assert (Occupancy(0) ** 2)(M) == 0.25

    def test_min_max(self):
        assert Occupancy(0).min_with(0.1)(M) == 0.1
        assert Occupancy(0).max_with(0.9)(M) == 0.9

    def test_division_by_zero_raises(self):
        expr = Const(1.0) / Occupancy(0)
        with pytest.raises(ModelError):
            expr(np.array([0.0, 1.0]))

    def test_guarded_division(self):
        expr = Occupancy(1).guarded_div(Occupancy(0), floor=1e-6)
        assert expr(np.array([0.0, 1.0])) == pytest.approx(1.0 / 1e-6)
        assert expr(M) == pytest.approx(0.3 / 0.5)

    def test_paper_smart_virus_rate(self):
        rate = Const(0.9) * Occupancy(2).guarded_div(Occupancy(0))
        assert rate(np.array([0.8, 0.15, 0.05])) == pytest.approx(
            0.9 * 0.05 / 0.8
        )


class TestValidation:
    def test_const_rejects_nan(self):
        with pytest.raises(ModelError):
            Const(float("nan"))

    def test_occupancy_rejects_negative_index(self):
        with pytest.raises(ModelError):
            Occupancy(-1)

    def test_occupancy_out_of_range_at_evaluation(self):
        with pytest.raises(ModelError):
            Occupancy(5)(M)

    def test_binary_rejects_unknown_op(self):
        with pytest.raises(ModelError):
            Binary("xor", Const(1), Const(2))

    def test_guard_floor_positive(self):
        with pytest.raises(ModelError):
            GuardedDiv(Const(1), Const(1), floor=0.0)


class TestSerialization:
    EXAMPLES = [
        Const(1.5),
        Occupancy(2),
        Time(),
        Const(0.9) * Occupancy(2).guarded_div(Occupancy(0)),
        (Occupancy(0) + Occupancy(1)) ** 2,
        Occupancy(0).min_with(Time() * 0.5),
    ]

    @pytest.mark.parametrize("expr", EXAMPLES)
    def test_round_trip(self, expr):
        rebuilt = from_dict(expr.to_dict())
        assert rebuilt == expr
        assert rebuilt(M, 3.0) == pytest.approx(expr(M, 3.0))

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ModelError):
            from_dict({"op": "teleport"})
        with pytest.raises(ModelError):
            from_dict("not a dict")

    def test_equality_and_hash(self):
        a = Const(2.0) * Occupancy(1)
        b = Const(2.0) * Occupancy(1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Const(2.0) * Occupancy(0)


class TestAnalysis:
    def test_is_constant(self):
        assert is_constant(Const(1.0) * 2.0 + 3.0)
        assert not is_constant(Occupancy(0) + 1.0)
        assert not is_constant(Time())

    def test_depends_on_time(self):
        assert depends_on_time(Const(1.0) + Time())
        assert not depends_on_time(Occupancy(0) * 2.0)


class TestAsModelRates:
    def test_expression_rates_in_local_model(self):
        from repro.meanfield.local_model import LocalModel

        local = LocalModel(
            ("a", "b"),
            {
                ("a", "b"): Const(1.0) * Occupancy(1) + 0.1,
                ("b", "a"): Const(0.5),
            },
            {"a": ["low"], "b": ["high"]},
        )
        q = local.generator(np.array([0.4, 0.6]))
        assert q[0, 1] == pytest.approx(0.7)
        assert q[1, 0] == 0.5
        # Constant expressions are recognized for the homogeneity flag.
        assert not local.is_homogeneous  # the a->b rate varies
        const_only = LocalModel(
            ("a", "b"), {("a", "b"): Const(1.0) + 1.0}, {}
        )
        assert const_only.is_homogeneous

    def test_time_dependent_expression_rate(self):
        from repro.meanfield.local_model import LocalModel

        local = LocalModel(
            ("a", "b"),
            {("a", "b"): Const(1.0) + Time() * 0.5},
            {},
        )
        q0 = local.generator(np.array([1.0, 0.0]), t=0.0)
        q2 = local.generator(np.array([1.0, 0.0]), t=2.0)
        assert q0[0, 1] == 1.0
        assert q2[0, 1] == 2.0
