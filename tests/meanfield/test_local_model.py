"""Tests for LocalModel and its builder (Definition 1)."""

import numpy as np
import pytest

from repro.ctmc.generator import validate_generator
from repro.exceptions import InvalidStateError, ModelError
from repro.meanfield.local_model import LocalModel, LocalModelBuilder


@pytest.fixture
def model() -> LocalModel:
    return (
        LocalModelBuilder()
        .state("s1", "not_infected")
        .state("s2", "infected", "inactive")
        .state("s3", "infected", "active")
        .transition("s1", "s2", lambda m: 0.9 * m[2] / max(m[0], 1e-12))
        .transition("s2", "s1", 0.1)
        .transition("s2", "s3", 0.01)
        .transition("s3", "s2", 0.3)
        .transition("s3", "s1", 0.3)
        .build()
    )


class TestStructure:
    def test_states_in_order(self, model):
        assert model.states == ("s1", "s2", "s3")
        assert model.num_states == 3

    def test_index_lookup(self, model):
        assert model.index("s2") == 1
        assert model.state_name(2) == "s3"

    def test_unknown_state_raises(self, model):
        with pytest.raises(InvalidStateError):
            model.index("nope")
        with pytest.raises(InvalidStateError):
            model.state_name(9)

    def test_duplicate_state_rejected(self):
        with pytest.raises(ModelError):
            LocalModelBuilder().state("a").state("a")

    def test_empty_model_rejected(self):
        with pytest.raises(ModelError):
            LocalModel((), {}, {})

    def test_self_loop_rejected(self):
        builder = LocalModelBuilder().state("a").state("b")
        builder.transition("a", "a", 1.0)
        with pytest.raises(ModelError):
            builder.build()

    def test_duplicate_transition_rejected(self):
        builder = LocalModelBuilder().state("a").state("b")
        builder.transition("a", "b", 1.0)
        with pytest.raises(ModelError):
            builder.transition("a", "b", 2.0)

    def test_labels_for_unknown_state_rejected(self):
        with pytest.raises(InvalidStateError):
            LocalModel(("a",), {}, {"ghost": ["x"]})


class TestLabels:
    def test_labels_of(self, model):
        assert model.labels_of("s2") == frozenset({"infected", "inactive"})
        assert model.labels_of("s1") == frozenset({"not_infected"})

    def test_states_with_label(self, model):
        assert model.states_with_label("infected") == frozenset({1, 2})
        assert model.states_with_label("active") == frozenset({2})
        assert model.states_with_label("missing") == frozenset()

    def test_atomic_propositions(self, model):
        assert model.atomic_propositions == frozenset(
            {"not_infected", "infected", "inactive", "active"}
        )


class TestGenerator:
    def test_generator_is_valid(self, model):
        m = np.array([0.8, 0.15, 0.05])
        q = model.generator(m)
        validate_generator(q)

    def test_occupancy_dependence(self, model):
        q_low = model.generator(np.array([0.9, 0.05, 0.05]))
        q_high = model.generator(np.array([0.5, 0.0, 0.5]))
        assert q_high[0, 1] > q_low[0, 1]

    def test_constant_entries(self, model):
        m = np.array([0.8, 0.15, 0.05])
        q = model.generator(m)
        assert q[1, 0] == 0.1
        assert q[2, 1] == 0.3

    def test_homogeneity_detection(self, model):
        assert not model.is_homogeneous
        const = (
            LocalModelBuilder()
            .state("a")
            .state("b")
            .transition("a", "b", 1.0)
            .build()
        )
        assert const.is_homogeneous

    def test_constant_generator(self):
        const = (
            LocalModelBuilder()
            .state("a")
            .state("b")
            .transition("a", "b", 2.0)
            .build()
        )
        q = const.constant_generator()
        assert q[0, 1] == 2.0

    def test_constant_generator_rejected_for_inhomogeneous(self, model):
        with pytest.raises(ModelError):
            model.constant_generator()

    def test_repr(self, model):
        text = repr(model)
        assert "s1" in text and "homogeneous=False" in text
