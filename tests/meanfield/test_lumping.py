"""Tests for ordinary lumpability and quotient models."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.meanfield import MeanFieldModel
from repro.meanfield.local_model import LocalModelBuilder
from repro.meanfield.lumping import (
    Lumping,
    find_lumping,
    label_partition,
    lumped_mean_field,
)


@pytest.fixture
def symmetric_model() -> MeanFieldModel:
    """Two fully symmetric 'infected' states: lumpable by construction.

    clean -> inf_a / inf_b at equal occupancy-dependent rates, identical
    recovery; inf_a and inf_b carry identical labels.
    """
    infect = lambda m: 0.5 * (m[1] + m[2])
    builder = (
        LocalModelBuilder()
        .state("clean", "healthy")
        .state("inf_a", "infected")
        .state("inf_b", "infected")
        .transition("clean", "inf_a", infect)
        .transition("clean", "inf_b", infect)
        .transition("inf_a", "clean", 1.0)
        .transition("inf_b", "clean", 1.0)
    )
    return MeanFieldModel(builder.build())


@pytest.fixture
def asymmetric_model() -> MeanFieldModel:
    """Same labels, different recovery rates: NOT lumpable."""
    builder = (
        LocalModelBuilder()
        .state("clean", "healthy")
        .state("inf_a", "infected")
        .state("inf_b", "infected")
        .transition("clean", "inf_a", 0.3)
        .transition("clean", "inf_b", 0.3)
        .transition("inf_a", "clean", 1.0)
        .transition("inf_b", "clean", 2.0)
    )
    return MeanFieldModel(builder.build())


class TestLabelPartition:
    def test_groups_by_labels(self, symmetric_model):
        partition = label_partition(symmetric_model.local)
        assert partition == [[0], [1, 2]]

    def test_virus_model_all_distinct(self, virus1):
        partition = label_partition(virus1.local)
        assert partition == [[0], [1], [2]]


class TestFindLumping:
    def test_symmetric_states_lumped(self, symmetric_model):
        lumping = find_lumping(symmetric_model.local)
        assert lumping.blocks == ((0,), (1, 2))
        assert not lumping.is_trivial
        assert lumping.quotient.num_states == 2

    def test_asymmetric_states_not_lumped(self, asymmetric_model):
        lumping = find_lumping(asymmetric_model.local)
        assert lumping.is_trivial

    def test_virus_model_trivial(self, virus1):
        lumping = find_lumping(virus1.local)
        assert lumping.is_trivial

    def test_block_of_and_occupancy_maps(self, symmetric_model):
        lumping = find_lumping(symmetric_model.local)
        assert lumping.block_of(0) == 0
        assert lumping.block_of(1) == lumping.block_of(2) == 1
        m = np.array([0.5, 0.3, 0.2])
        lumped = lumping.lump_occupancy(m)
        assert np.allclose(lumped, [0.5, 0.5])
        lifted = lumping.lift_occupancy(lumped)
        assert np.allclose(lifted, [0.5, 0.25, 0.25])

    def test_lift_validates_length(self, symmetric_model):
        lumping = find_lumping(symmetric_model.local)
        with pytest.raises(ModelError):
            lumping.lift_occupancy(np.array([1.0, 0.0, 0.0]))

    def test_probe_count_validated(self, symmetric_model):
        with pytest.raises(ModelError):
            find_lumping(symmetric_model.local, probes=1)


class TestQuotientDynamics:
    def test_quotient_trajectory_matches_projection(self, symmetric_model):
        """The acid test: integrating the quotient equals projecting the
        full flow (for every t)."""
        lumping = find_lumping(symmetric_model.local)
        quotient = lumped_mean_field(symmetric_model, lumping)
        m0 = np.array([0.6, 0.3, 0.1])
        full_traj = symmetric_model.trajectory(m0, horizon=8.0)
        lumped_traj = quotient.trajectory(
            lumping.lump_occupancy(m0), horizon=8.0
        )
        for t in (0.5, 2.0, 5.0, 8.0):
            assert np.allclose(
                lumping.lump_occupancy(full_traj(t)),
                lumped_traj(t),
                atol=1e-8,
            ), f"t={t}"

    def test_quotient_labels(self, symmetric_model):
        lumping = find_lumping(symmetric_model.local)
        quotient = lumping.quotient
        assert quotient.states_with_label("infected") == frozenset({1})
        assert quotient.states_with_label("healthy") == frozenset({0})

    def test_quotient_checking_agrees(self, symmetric_model):
        """MF-CSL verdicts transfer between the full and lumped models
        for label formulas."""
        from repro.checking import MFModelChecker

        lumping = find_lumping(symmetric_model.local)
        quotient = lumped_mean_field(symmetric_model, lumping)
        m0 = np.array([0.6, 0.3, 0.1])
        m0_lumped = lumping.lump_occupancy(m0)
        full = MFModelChecker(symmetric_model)
        lumped = MFModelChecker(quotient)
        formula = "EP[<0.9](healthy U[0,2] infected)"
        assert full.value(formula, m0) == pytest.approx(
            lumped.value(formula, m0_lumped), abs=1e-7
        )

    def test_intra_block_dependence_rejected(self):
        """Rates reading an individual member of a would-be block force
        the trivial lumping (quotient would be ill-defined)."""
        builder = (
            LocalModelBuilder()
            .state("clean", "healthy")
            .state("inf_a", "infected")
            .state("inf_b", "infected")
            # depends on m[1] alone, not on the block total m[1]+m[2]
            .transition("clean", "inf_a", lambda m: 0.5 * m[1])
            .transition("clean", "inf_b", lambda m: 0.5 * m[1])
            .transition("inf_a", "clean", 1.0)
            .transition("inf_b", "clean", 1.0)
        )
        lumping = find_lumping(builder.build())
        assert lumping.is_trivial
