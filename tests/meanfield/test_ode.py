"""Tests for OccupancyTrajectory (Equation (1) solutions)."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.exceptions import ModelError, NumericalError
from repro.meanfield.ode import OccupancyTrajectory
from repro.models.virus import SETTING_1, overall_ode_matrix, virus_model


@pytest.fixture
def linear_drift():
    """The Setting-1 virus overall ODE, which is linear: ṁ = m A."""
    a = overall_ode_matrix(SETTING_1)
    return a, (lambda t, m: m @ a)


class TestAgainstClosedForm:
    def test_matches_matrix_exponential(self, linear_drift):
        a, drift = linear_drift
        m0 = np.array([0.8, 0.15, 0.05])
        traj = OccupancyTrajectory(drift, m0, horizon=10.0)
        for t in (0.5, 2.0, 7.5, 10.0):
            exact = m0 @ expm(a * t)
            assert np.allclose(traj(t), exact, atol=1e-8), f"t={t}"

    def test_initial_returned_exactly(self, linear_drift):
        _, drift = linear_drift
        m0 = np.array([0.5, 0.25, 0.25])
        traj = OccupancyTrajectory(drift, m0, horizon=1.0)
        assert np.allclose(traj(0.0), m0)

    def test_model_trajectory_matches_closed_form(self):
        """Full-stack check: MeanFieldModel -> trajectory vs expm."""
        a = overall_ode_matrix(SETTING_1)
        model = virus_model(SETTING_1)
        m0 = np.array([0.8, 0.15, 0.05])
        traj = model.trajectory(m0, horizon=20.0)
        for t in (1.0, 5.0, 14.0, 20.0):
            exact = m0 @ expm(a * t)
            assert np.allclose(traj(t), exact, atol=1e-7), f"t={t}"


class TestLazyExtension:
    def test_extends_past_horizon(self, linear_drift):
        a, drift = linear_drift
        m0 = np.array([0.8, 0.15, 0.05])
        traj = OccupancyTrajectory(drift, m0, horizon=1.0)
        value = traj(8.0)  # requires two extensions
        exact = m0 @ expm(a * 8.0)
        assert np.allclose(value, exact, atol=1e-7)
        assert traj.horizon >= 8.0

    def test_max_horizon_enforced(self, linear_drift):
        _, drift = linear_drift
        traj = OccupancyTrajectory(
            drift, np.array([1.0, 0.0, 0.0]), horizon=1.0, max_horizon=5.0
        )
        with pytest.raises(ModelError):
            traj(100.0)

    def test_negative_time_rejected(self, linear_drift):
        _, drift = linear_drift
        traj = OccupancyTrajectory(drift, np.array([1.0, 0.0, 0.0]), horizon=1.0)
        with pytest.raises(ModelError):
            traj(-0.5)


class TestSimplexInvariance:
    def test_stays_normalized(self, linear_drift):
        _, drift = linear_drift
        m0 = np.array([0.34, 0.33, 0.33])
        traj = OccupancyTrajectory(drift, m0, horizon=30.0)
        for t in np.linspace(0, 30, 13):
            m = traj(t)
            assert m.sum() == pytest.approx(1.0, abs=1e-9)
            assert np.all(m >= 0.0)


class TestGrid:
    def test_grid_shape(self, linear_drift):
        _, drift = linear_drift
        traj = OccupancyTrajectory(drift, np.array([1.0, 0.0, 0.0]), horizon=5.0)
        times, values = traj.grid(5.0, num=11)
        assert times.shape == (11,)
        assert values.shape == (11, 3)
        assert np.allclose(values[0], [1.0, 0.0, 0.0])

    def test_grid_rejects_tiny_num(self, linear_drift):
        _, drift = linear_drift
        traj = OccupancyTrajectory(drift, np.array([1.0, 0.0, 0.0]), horizon=5.0)
        with pytest.raises(ModelError):
            traj.grid(5.0, num=1)


class TestShiftedTrajectory:
    def test_negative_time_rejected_scalar(self, linear_drift):
        _, drift = linear_drift
        traj = OccupancyTrajectory(drift, np.array([0.8, 0.15, 0.05]), horizon=5.0)
        view = traj.shifted(2.0)
        with pytest.raises(ModelError):
            view(-0.5)

    def test_eval_many_rejects_negative_times(self, linear_drift):
        """Regression: a negative view time used to be shifted *first*,
        silently aliasing ``parent(offset + t)`` whenever the offset was
        large enough to keep the shifted time non-negative."""
        _, drift = linear_drift
        traj = OccupancyTrajectory(drift, np.array([0.8, 0.15, 0.05]), horizon=5.0)
        view = traj.shifted(2.0)
        with pytest.raises(ModelError, match="negative time"):
            view.eval_many(np.array([-0.5, 1.0]))

    def test_eval_many_matches_parent(self, linear_drift):
        _, drift = linear_drift
        traj = OccupancyTrajectory(drift, np.array([0.8, 0.15, 0.05]), horizon=5.0)
        view = traj.shifted(2.0)
        ts = np.array([0.0, 0.5, 1.5])
        assert np.allclose(view.eval_many(ts), traj.eval_many(ts + 2.0))

    def test_empty_query_allowed(self, linear_drift):
        _, drift = linear_drift
        traj = OccupancyTrajectory(drift, np.array([0.8, 0.15, 0.05]), horizon=1.0)
        assert traj.shifted(0.5).eval_many(np.array([])).shape == (0, 3)


class TestFailurePaths:
    def test_zero_mass_rejected_scalar(self):
        """Renormalization must fail loudly when all mass is clipped away."""
        drift = lambda t, m: np.zeros_like(m)
        traj = OccupancyTrajectory(drift, np.zeros(3), horizon=1.0)
        with pytest.raises(NumericalError, match="zero mass"):
            traj(0.5)

    def test_zero_mass_rejected_vectorized(self):
        drift = lambda t, m: np.zeros_like(m)
        traj = OccupancyTrajectory(drift, np.zeros(3), horizon=1.0)
        with pytest.raises(NumericalError, match="zero mass"):
            traj.eval_many(np.array([0.25, 0.75]))

    def test_extend_failure_names_interval(self, linear_drift):
        """The _extend_to wrapper must say *which* window failed."""
        _, drift = linear_drift

        def bad_drift(t, m):
            raise FloatingPointError("boom")

        with pytest.raises(NumericalError, match=r"\[0.0, 2.0\]"):
            OccupancyTrajectory(
                bad_drift, np.array([1.0, 0.0, 0.0]), horizon=2.0,
                fallbacks=(),
            )
