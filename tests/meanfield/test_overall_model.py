"""Tests for MeanFieldModel and occupancy validation (Definition 2)."""

import numpy as np
import pytest

from repro.exceptions import InvalidOccupancyError
from repro.meanfield.overall_model import MeanFieldModel, validate_occupancy


class TestValidateOccupancy:
    def test_valid_vector(self):
        m = validate_occupancy(np.array([0.5, 0.3, 0.2]), 3)
        assert m.sum() == pytest.approx(1.0)

    def test_list_input(self):
        m = validate_occupancy([0.5, 0.5], 2)
        assert isinstance(m, np.ndarray)

    def test_wrong_length(self):
        with pytest.raises(InvalidOccupancyError):
            validate_occupancy([0.5, 0.5], 3)

    def test_negative_entry(self):
        with pytest.raises(InvalidOccupancyError):
            validate_occupancy([-0.2, 1.2], 2)

    def test_bad_sum(self):
        with pytest.raises(InvalidOccupancyError):
            validate_occupancy([0.5, 0.2], 2)

    def test_non_finite(self):
        with pytest.raises(InvalidOccupancyError):
            validate_occupancy([np.nan, 1.0], 2)

    def test_tiny_negative_clipped(self):
        m = validate_occupancy([1.0 + 1e-9, -1e-9], 2)
        assert np.all(m >= 0.0)
        assert m.sum() == pytest.approx(1.0)


class TestMeanFieldModel:
    def test_drift_preserves_total_mass(self, virus1):
        m = np.array([0.8, 0.15, 0.05])
        drift = virus1.drift(0.0, m)
        assert drift.sum() == pytest.approx(0.0, abs=1e-12)

    def test_drift_matches_paper_ode_21(self, virus1):
        """The drift must equal the paper's explicit ODE system (21)."""
        k1, k2, k3, k4, k5 = 0.9, 0.1, 0.01, 0.3, 0.3
        m = np.array([0.8, 0.15, 0.05])
        expected = np.array(
            [
                -k1 * m[2] + k2 * m[1] + k5 * m[2],
                (k1 + k4) * m[2] - (k2 + k3) * m[1],
                k3 * m[1] - (k4 + k5) * m[2],
            ]
        )
        assert np.allclose(virus1.drift(0.0, m), expected, atol=1e-12)

    def test_trajectory_validates_initial(self, virus1):
        with pytest.raises(InvalidOccupancyError):
            virus1.trajectory(np.array([0.5, 0.1, 0.1]))

    def test_generator_along_trajectory(self, virus1):
        m0 = np.array([0.8, 0.15, 0.05])
        traj = virus1.trajectory(m0, horizon=5.0)
        q_of_t = virus1.generator_along(traj)
        q0 = q_of_t(0.0)
        # At time zero the infection rate is k1 * m3 / m1.
        assert q0[0, 1] == pytest.approx(0.9 * 0.05 / 0.8, rel=1e-9)
        q5 = q_of_t(5.0)
        assert q5[0, 1] != pytest.approx(q0[0, 1])

    def test_occupancy_of_counts(self, virus1):
        occ = virus1.occupancy_of_counts(np.array([80, 15, 5]))
        assert np.allclose(occ, [0.8, 0.15, 0.05])

    def test_occupancy_of_counts_rejects_zero(self, virus1):
        with pytest.raises(InvalidOccupancyError):
            virus1.occupancy_of_counts(np.zeros(3))

    def test_num_states(self, virus1):
        assert virus1.num_states == 3

    def test_repr(self, virus1):
        assert "MeanFieldModel" in repr(virus1)
