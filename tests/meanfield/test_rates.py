"""Tests for rate-specification normalization."""

import numpy as np
import pytest

from repro.exceptions import InvalidRateError
from repro.meanfield.rates import (
    evaluate_rate,
    is_constant_rate,
    normalize_rate,
)


class TestNormalize:
    def test_constant(self):
        rate = normalize_rate(2.5)
        assert rate(np.array([1.0]), 0.0) == 2.5
        assert rate(np.array([0.3]), 99.0) == 2.5

    def test_integer_constant(self):
        rate = normalize_rate(3)
        assert rate(np.zeros(2), 0.0) == 3.0

    def test_occupancy_only_callable(self):
        rate = normalize_rate(lambda m: 2.0 * m[0])
        assert rate(np.array([0.5, 0.5]), 7.0) == 1.0

    def test_occupancy_and_time_callable(self):
        rate = normalize_rate(lambda m, t: m[0] + t)
        assert rate(np.array([0.25]), 1.0) == 1.25

    def test_rejects_negative_constant(self):
        with pytest.raises(InvalidRateError):
            normalize_rate(-1.0)

    def test_rejects_infinite_constant(self):
        with pytest.raises(InvalidRateError):
            normalize_rate(float("inf"))

    def test_rejects_zero_arg_callable(self):
        with pytest.raises(InvalidRateError):
            normalize_rate(lambda: 1.0)

    def test_is_constant_rate(self):
        assert is_constant_rate(1.0)
        assert not is_constant_rate(lambda m: m[0])


class TestEvaluate:
    def test_valid_value(self):
        rate = normalize_rate(lambda m: m[0] * 2)
        assert evaluate_rate(rate, np.array([0.5]), 0.0) == 1.0

    def test_negative_evaluation_raises(self):
        rate = normalize_rate(lambda m: -1.0)
        with pytest.raises(InvalidRateError):
            evaluate_rate(rate, np.array([0.5]), 0.0)

    def test_nan_evaluation_raises(self):
        rate = normalize_rate(lambda m: float("nan"))
        with pytest.raises(InvalidRateError):
            evaluate_rate(rate, np.array([0.5]), 0.0)

    def test_roundoff_negative_clamped(self):
        rate = normalize_rate(lambda m: -1e-12)
        assert evaluate_rate(rate, np.array([0.5]), 0.0) == 0.0
