"""Tests for the finite-N Gillespie simulator (Kurtz convergence)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.meanfield.simulation import FiniteNSimulator, occupancy_rmse


class TestInitialCounts:
    def test_exact_fractions(self, virus1):
        sim = FiniteNSimulator(virus1.local, 100)
        counts = sim.initial_counts([0.8, 0.15, 0.05])
        assert counts.tolist() == [80, 15, 5]

    def test_rounding_preserves_total(self, virus1):
        sim = FiniteNSimulator(virus1.local, 97)
        counts = sim.initial_counts([0.8, 0.15, 0.05])
        assert counts.sum() == 97
        assert np.all(counts >= 0)

    def test_wrong_length_rejected(self, virus1):
        sim = FiniteNSimulator(virus1.local, 10)
        with pytest.raises(ModelError):
            sim.initial_counts([0.5, 0.5])

    def test_population_must_be_positive(self, virus1):
        with pytest.raises(ModelError):
            FiniteNSimulator(virus1.local, 0)


class TestSimulate:
    def test_occupancies_stay_on_discrete_simplex(self, virus1):
        sim = FiniteNSimulator(virus1.local, 50)
        emp = sim.simulate(
            [0.8, 0.15, 0.05], 3.0, rng=np.random.default_rng(0)
        )
        for occ in emp.occupancies:
            assert occ.sum() == pytest.approx(1.0)
            scaled = occ * 50
            assert np.allclose(scaled, np.round(scaled), atol=1e-9)

    def test_callable_interface(self, virus1):
        sim = FiniteNSimulator(virus1.local, 50)
        emp = sim.simulate(
            [0.8, 0.15, 0.05], 3.0, rng=np.random.default_rng(1)
        )
        assert emp(0.0).tolist() == emp.occupancies[0].tolist()
        assert emp(3.0).tolist() == emp.occupancies[-1].tolist()
        with pytest.raises(ModelError):
            emp(10.0)

    def test_negative_horizon_rejected(self, virus1):
        sim = FiniteNSimulator(virus1.local, 50)
        with pytest.raises(ModelError):
            sim.simulate([0.8, 0.15, 0.05], -1.0)

    def test_ensemble_is_reproducible(self, virus1):
        sim = FiniteNSimulator(virus1.local, 30)
        runs_a = sim.simulate_ensemble([0.8, 0.15, 0.05], 2.0, runs=3, seed=5)
        runs_b = sim.simulate_ensemble([0.8, 0.15, 0.05], 2.0, runs=3, seed=5)
        for a, b in zip(runs_a, runs_b):
            assert np.array_equal(a.times, b.times)
            assert np.array_equal(a.occupancies, b.occupancies)

    def test_ensemble_rejects_zero_runs(self, virus1):
        sim = FiniteNSimulator(virus1.local, 30)
        with pytest.raises(ModelError):
            sim.simulate_ensemble([0.8, 0.15, 0.05], 2.0, runs=0)


class TestKurtzConvergence:
    def test_error_decreases_with_population(self, virus1):
        """The heart of the mean-field method: empirical occupancies
        approach the ODE solution as N grows (Theorem 1)."""
        m0 = [0.8, 0.15, 0.05]
        horizon = 4.0
        trajectory = virus1.trajectory(np.array(m0), horizon=horizon)

        def mean_rmse(n: int, runs: int = 5) -> float:
            sim = FiniteNSimulator(virus1.local, n)
            ensemble = sim.simulate_ensemble(m0, horizon, runs=runs, seed=11)
            return float(
                np.mean([occupancy_rmse(e, trajectory) for e in ensemble])
            )

        small = mean_rmse(50)
        large = mean_rmse(2000)
        assert large < small
        # ~ 1/sqrt(N) scaling: a 40x population should shrink the error
        # by well over 2x.
        assert large < small / 2.0

    def test_large_population_is_close(self, virus1):
        m0 = [0.8, 0.15, 0.05]
        trajectory = virus1.trajectory(np.array(m0), horizon=4.0)
        sim = FiniteNSimulator(virus1.local, 5000)
        emp = sim.simulate(m0, 4.0, rng=np.random.default_rng(2))
        assert occupancy_rmse(emp, trajectory) < 0.02
