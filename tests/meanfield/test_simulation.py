"""Tests for the finite-N Gillespie simulator (Kurtz convergence)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.instrumentation import EvalStats
from repro.meanfield.simulation import FiniteNSimulator, occupancy_rmse


class TestInitialCounts:
    def test_exact_fractions(self, virus1):
        sim = FiniteNSimulator(virus1.local, 100)
        counts = sim.initial_counts([0.8, 0.15, 0.05])
        assert counts.tolist() == [80, 15, 5]

    def test_rounding_preserves_total(self, virus1):
        sim = FiniteNSimulator(virus1.local, 97)
        counts = sim.initial_counts([0.8, 0.15, 0.05])
        assert counts.sum() == 97
        assert np.all(counts >= 0)

    def test_wrong_length_rejected(self, virus1):
        sim = FiniteNSimulator(virus1.local, 10)
        with pytest.raises(ModelError):
            sim.initial_counts([0.5, 0.5])

    def test_population_must_be_positive(self, virus1):
        with pytest.raises(ModelError):
            FiniteNSimulator(virus1.local, 0)


class TestSimulate:
    def test_occupancies_stay_on_discrete_simplex(self, virus1):
        sim = FiniteNSimulator(virus1.local, 50)
        emp = sim.simulate(
            [0.8, 0.15, 0.05], 3.0, rng=np.random.default_rng(0)
        )
        for occ in emp.occupancies:
            assert occ.sum() == pytest.approx(1.0)
            scaled = occ * 50
            assert np.allclose(scaled, np.round(scaled), atol=1e-9)

    def test_callable_interface(self, virus1):
        sim = FiniteNSimulator(virus1.local, 50)
        emp = sim.simulate(
            [0.8, 0.15, 0.05], 3.0, rng=np.random.default_rng(1)
        )
        assert emp(0.0).tolist() == emp.occupancies[0].tolist()
        assert emp(3.0).tolist() == emp.occupancies[-1].tolist()
        with pytest.raises(ModelError):
            emp(10.0)

    def test_negative_horizon_rejected(self, virus1):
        sim = FiniteNSimulator(virus1.local, 50)
        with pytest.raises(ModelError):
            sim.simulate([0.8, 0.15, 0.05], -1.0)

    def test_ensemble_is_reproducible(self, virus1):
        sim = FiniteNSimulator(virus1.local, 30)
        runs_a = sim.simulate_ensemble([0.8, 0.15, 0.05], 2.0, runs=3, seed=5)
        runs_b = sim.simulate_ensemble([0.8, 0.15, 0.05], 2.0, runs=3, seed=5)
        for a, b in zip(runs_a, runs_b):
            assert np.array_equal(a.times, b.times)
            assert np.array_equal(a.occupancies, b.occupancies)

    def test_ensemble_rejects_zero_runs(self, virus1):
        sim = FiniteNSimulator(virus1.local, 30)
        with pytest.raises(ModelError):
            sim.simulate_ensemble([0.8, 0.15, 0.05], 2.0, runs=0)


class TestBatchedEnsemble:
    M0 = [0.8, 0.15, 0.05]

    def test_batched_reproducible(self, virus1):
        sim = FiniteNSimulator(virus1.local, 40)
        a = sim.simulate_ensemble(self.M0, 2.0, runs=10, seed=3)
        b = sim.simulate_ensemble(self.M0, 2.0, runs=10, seed=3)
        for x, y in zip(a, b):
            assert np.array_equal(x.times, y.times)
            assert np.array_equal(x.occupancies, y.occupancies)

    def test_workers_do_not_change_trajectories(self, virus1):
        """The reproducibility contract: bitwise-identical output for
        every worker count (batches are seeded by index, not by worker)."""
        sim = FiniteNSimulator(virus1.local, 40)
        one = sim.simulate_ensemble(
            self.M0, 2.0, runs=20, seed=5, batch_size=8, workers=1
        )
        four = sim.simulate_ensemble(
            self.M0, 2.0, runs=20, seed=5, batch_size=8, workers=4
        )
        assert len(one) == len(four) == 20
        for x, y in zip(one, four):
            assert np.array_equal(x.times, y.times)
            assert np.array_equal(x.occupancies, y.occupancies)

    def test_occupancies_stay_on_discrete_simplex(self, virus1):
        n = 30
        sim = FiniteNSimulator(virus1.local, n)
        for emp in sim.simulate_ensemble(self.M0, 2.0, runs=4, seed=1):
            scaled = emp.occupancies * n
            assert np.allclose(scaled, np.round(scaled), atol=1e-9)
            assert np.allclose(emp.occupancies.sum(axis=1), 1.0)
            assert np.all(np.diff(emp.times) >= 0)

    def test_batched_matches_serial_in_distribution(self, virus1):
        """Same final-occupancy statistics from both engines (they share
        one transition-rate oracle but draw randomness differently)."""
        sim = FiniteNSimulator(virus1.local, 200)
        horizon = 1.5
        batched = sim.simulate_ensemble(
            self.M0, horizon, runs=60, seed=17, method="batched"
        )
        serial = sim.simulate_ensemble(
            self.M0, horizon, runs=60, seed=17, method="serial"
        )
        mb = np.vstack([p(horizon) for p in batched]).mean(axis=0)
        ms = np.vstack([p(horizon) for p in serial]).mean(axis=0)
        # Means of 60 runs at N=200: std of the mean ~ 0.004 per state.
        assert np.allclose(mb, ms, atol=0.02)

    def test_stats_counters(self, virus1):
        sim = FiniteNSimulator(virus1.local, 50)
        stats = EvalStats()
        sim.simulate_ensemble(
            self.M0, 1.0, runs=10, seed=2, batch_size=4, stats=stats
        )
        assert stats.sim_events > 0
        assert stats.sim_batches == 3  # ceil(10 / 4)

    def test_method_validated(self, virus1):
        sim = FiniteNSimulator(virus1.local, 50)
        with pytest.raises(ModelError):
            sim.simulate_ensemble(self.M0, 1.0, runs=2, method="turbo")


class TestEvalMany:
    def test_matches_scalar_calls(self, virus1):
        sim = FiniteNSimulator(virus1.local, 50)
        emp = sim.simulate(
            [0.8, 0.15, 0.05], 3.0, rng=np.random.default_rng(4)
        )
        ts = np.linspace(0.0, 3.0, 37)
        many = emp.eval_many(ts)
        single = np.vstack([emp(t) for t in ts])
        assert np.array_equal(many, single)

    def test_out_of_range_rejected(self, virus1):
        sim = FiniteNSimulator(virus1.local, 50)
        emp = sim.simulate(
            [0.8, 0.15, 0.05], 1.0, rng=np.random.default_rng(4)
        )
        with pytest.raises(ModelError):
            emp.eval_many(np.array([0.5, 2.0]))


class TestKurtzConvergence:
    def test_error_decreases_with_population(self, virus1):
        """The heart of the mean-field method: empirical occupancies
        approach the ODE solution as N grows (Theorem 1)."""
        m0 = [0.8, 0.15, 0.05]
        horizon = 4.0
        trajectory = virus1.trajectory(np.array(m0), horizon=horizon)

        def mean_rmse(n: int, runs: int = 5) -> float:
            sim = FiniteNSimulator(virus1.local, n)
            ensemble = sim.simulate_ensemble(m0, horizon, runs=runs, seed=11)
            return float(
                np.mean([occupancy_rmse(e, trajectory) for e in ensemble])
            )

        small = mean_rmse(50)
        large = mean_rmse(2000)
        assert large < small
        # ~ 1/sqrt(N) scaling: a 40x population should shrink the error
        # by well over 2x.
        assert large < small / 2.0

    def test_large_population_is_close(self, virus1):
        m0 = [0.8, 0.15, 0.05]
        trajectory = virus1.trajectory(np.array(m0), horizon=4.0)
        sim = FiniteNSimulator(virus1.local, 5000)
        emp = sim.simulate(m0, 4.0, rng=np.random.default_rng(2))
        assert occupancy_rmse(emp, trajectory) < 0.02
