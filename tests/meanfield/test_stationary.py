"""Tests for mean-field fixed points (Equation (2))."""

import numpy as np
import pytest

from repro.exceptions import SteadyStateError
from repro.meanfield import MeanFieldModel
from repro.meanfield.local_model import LocalModelBuilder
from repro.meanfield.stationary import (
    classify_stability,
    find_fixed_point,
    find_fixed_points,
    stationary_from_long_run,
)
from repro.models.epidemic import SisParameters, sis_model


class TestVirusFixedPoint:
    def test_virus_free_point(self, virus1):
        fp = find_fixed_point(virus1, np.array([0.9, 0.05, 0.05]))
        assert np.allclose(fp.occupancy, [1.0, 0.0, 0.0], atol=1e-6)
        assert fp.residual < 1e-9

    def test_long_run_agrees(self, virus1):
        m = stationary_from_long_run(virus1, np.array([0.8, 0.15, 0.05]))
        assert np.allclose(m, [1.0, 0.0, 0.0], atol=1e-5)


class TestSisFixedPoints:
    """SIS has a known threshold structure: textbook material."""

    def test_endemic_point_above_threshold(self):
        params = SisParameters(beta=2.0, gamma=1.0)  # R0 = 2
        model = sis_model(params)
        points = find_fixed_points(model, num_starts=16)
        infected_levels = sorted(fp.occupancy[1] for fp in points)
        # Disease-free (0) and endemic (1 - 1/R0 = 0.5).
        assert len(points) == 2
        assert infected_levels[0] == pytest.approx(0.0, abs=1e-8)
        assert infected_levels[1] == pytest.approx(0.5, abs=1e-8)

    def test_endemic_point_is_stable(self):
        model = sis_model(SisParameters(beta=2.0, gamma=1.0))
        endemic = find_fixed_point(model, np.array([0.5, 0.5]))
        assert endemic.occupancy[1] == pytest.approx(0.5, abs=1e-8)
        assert endemic.stable is True

    def test_disease_free_unstable_above_threshold(self):
        model = sis_model(SisParameters(beta=2.0, gamma=1.0))
        stability = classify_stability(model, np.array([1.0, 0.0]))
        assert stability is False

    def test_disease_free_stable_below_threshold(self):
        model = sis_model(SisParameters(beta=0.5, gamma=1.0))  # R0 = 0.5
        stability = classify_stability(model, np.array([1.0, 0.0]))
        assert stability is True

    def test_long_run_reaches_endemic(self):
        model = sis_model(SisParameters(beta=2.0, gamma=1.0))
        m = stationary_from_long_run(model, np.array([0.99, 0.01]))
        assert m[1] == pytest.approx(0.5, abs=1e-6)


class TestHomogeneousConsistency:
    def test_matches_ctmc_stationary(self, homogeneous_model):
        """With constant rates the mean-field fixed point equals the
        CTMC stationary distribution."""
        from repro.ctmc.stationary import stationary_distribution

        q = homogeneous_model.local.constant_generator()
        pi = stationary_distribution(q)
        fp = find_fixed_point(homogeneous_model, np.full(3, 1.0 / 3.0))
        assert np.allclose(fp.occupancy, pi, atol=1e-8)
        assert fp.stable is True


class TestFailureModes:
    def test_oscillatory_model_long_run_fails(self):
        """A rotational drift never settles: long-run must raise."""
        eps = 0.05
        builder = (
            LocalModelBuilder()
            .state("a")
            .state("b")
            .state("c")
            # Strong cyclic pumping sustained by occupancy feedback.
            .transition("a", "b", lambda m: 1.0 + 10.0 * m[2])
            .transition("b", "c", lambda m: 1.0 + 10.0 * m[0])
            .transition("c", "a", lambda m: 1.0 + 10.0 * m[1])
        )
        model = MeanFieldModel(builder.build())
        # This cyclic model actually converges to the uniform point, so
        # use a tight drift tolerance with a tiny max horizon to exercise
        # the failure path deterministically.
        with pytest.raises(SteadyStateError):
            stationary_from_long_run(
                model,
                np.array([1.0, 0.0, 0.0]),
                horizon=1e-3,
                drift_tol=1e-30,
                max_horizon=2e-3,
            )
