"""Tests for the botnet model."""

import numpy as np
import pytest

from repro.checking import MFModelChecker
from repro.exceptions import ModelError
from repro.meanfield.stationary import find_fixed_point
from repro.models.botnet import BotnetParameters, botnet_model


@pytest.fixture
def model():
    return botnet_model()


class TestStructure:
    def test_five_states(self, model):
        assert model.num_states == 5
        assert model.local.states == (
            "clean",
            "dormant",
            "connected",
            "active",
            "quarantined",
        )

    def test_labels(self, model):
        local = model.local
        assert local.states_with_label("infected") == frozenset({1, 2, 3})
        assert local.states_with_label("propagating") == frozenset({2, 3})
        assert local.states_with_label("bot") == frozenset({2, 3})

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            BotnetParameters(attack=-0.5)


class TestDynamics:
    def test_no_bots_no_infection(self, model):
        m0 = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        traj = model.trajectory(m0, horizon=5.0)
        assert np.allclose(traj(5.0), m0, atol=1e-8)

    def test_epidemic_from_seed(self, model):
        m0 = np.array([0.94, 0.02, 0.02, 0.02, 0.0])
        traj = model.trajectory(m0, horizon=30.0)
        m_end = traj(30.0)
        infected = m_end[1] + m_end[2] + m_end[3]
        assert infected > 0.1

    def test_endemic_fixed_point_exists(self, model):
        m0 = np.array([0.9, 0.03, 0.03, 0.04, 0.0])
        traj = model.trajectory(m0, horizon=300.0)
        candidate = traj(300.0)
        fp = find_fixed_point(model, candidate, residual_tol=1e-7)
        assert fp.occupancy[0] > 0.0  # clean machines persist (reimaging)
        assert fp.occupancy[2] + fp.occupancy[3] > 0.0

    def test_strong_defense_eradicates(self):
        strong = botnet_model(
            BotnetParameters(
                attack=0.1,
                detect_dormant=1.0,
                detect_connected=1.0,
                detect_active=2.0,
            )
        )
        m0 = np.array([0.9, 0.05, 0.03, 0.02, 0.0])
        traj = strong.trajectory(m0, horizon=300.0)
        m_end = traj(300.0)
        assert m_end[1] + m_end[2] + m_end[3] < 1e-4


class TestChecking:
    def test_mfcsl_end_to_end(self, model):
        checker = MFModelChecker(model)
        m0 = np.array([0.9, 0.04, 0.03, 0.03, 0.0])
        assert checker.check("E[<0.2](infected)", m0)
        assert checker.check(
            "EP[<0.9](clean U[0,1] infected)", m0
        )
        report = checker.explain("E[>0.5](clean) & E[<0.1](attacking)", m0)
        assert all(holds for _, _, holds in report)
