"""Tests for explicit time dependence (footnote 4 of the paper)."""

import numpy as np
import pytest

from repro.checking import EvaluationContext, MFModelChecker
from repro.checking.local import LocalChecker
from repro.exceptions import ModelError
from repro.logic.parser import parse_path
from repro.models.diurnal import (
    DiurnalParameters,
    day_factor,
    diurnal_virus_model,
)

M0 = np.array([0.9, 0.1])


class TestParameters:
    def test_defaults_valid(self):
        diurnal_virus_model()

    @pytest.mark.parametrize(
        "kwargs",
        [{"infect": -1.0}, {"period": 0.0}, {"amplitude": 1.0}],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ModelError):
            DiurnalParameters(**kwargs)


class TestTimeDependence:
    def test_generator_varies_with_time_at_fixed_occupancy(self):
        model = diurnal_virus_model()
        params = DiurnalParameters()
        q_day = model.local.generator(M0, t=params.period / 4.0)  # sin = 1
        q_night = model.local.generator(M0, t=3 * params.period / 4.0)
        assert q_day[0, 1] > q_night[0, 1]
        assert q_day[1, 0] > q_night[1, 0]

    def test_day_factor_bounds(self):
        params = DiurnalParameters(amplitude=0.9)
        ts = np.linspace(0, params.period, 50)
        values = [day_factor(params, t) for t in ts]
        assert min(values) >= 0.1 - 1e-12
        assert max(values) <= 1.9 + 1e-12

    def test_trajectory_oscillates(self):
        model = diurnal_virus_model()
        traj = model.trajectory(M0, horizon=40.0)
        infected = np.array([traj(t)[1] for t in np.linspace(20, 40, 200)])
        # After transients, infection keeps oscillating within a band.
        assert infected.max() - infected.min() > 0.01
        assert infected.min() > 0.0


class TestCheckingWithExplicitTime:
    def test_until_probability_depends_on_phase(self):
        """The same until formula gives different probabilities when
        evaluated at opposite phases of the cycle — the signature of
        genuine time inhomogeneity."""
        params = DiurnalParameters()
        model = diurnal_virus_model(params)
        ctx = EvaluationContext(model, M0)
        checker = LocalChecker(ctx)
        path = parse_path("clean U[0,0.5] infected")
        curve = checker.path_curve(path, theta=params.period)
        quarter = params.period / 4.0
        p_day = curve.value(quarter, 0)
        p_night = curve.value(3 * quarter, 0)
        assert p_day != pytest.approx(p_night, abs=1e-4)

    def test_curve_methods_agree_with_time_dependence(self):
        model = diurnal_virus_model()
        from repro.checking import CheckOptions

        path = parse_path("clean U[0,0.5] infected")
        values = {}
        for method in ("propagate", "recompute"):
            ctx = EvaluationContext(
                model, M0, CheckOptions(curve_method=method)
            )
            curve = LocalChecker(ctx).path_curve(path, theta=6.0)
            values[method] = [curve.value(t, 0) for t in (0.0, 2.0, 5.0)]
        assert np.allclose(
            values["propagate"], values["recompute"], atol=1e-6
        )

    def test_statistical_checker_sees_time_dependence(self):
        from repro.checking.statistical import StatisticalChecker

        model = diurnal_virus_model()
        ctx = EvaluationContext(model, M0)
        analytic = LocalChecker(ctx).path_probabilities(
            parse_path("clean U[0,2] infected")
        )[0]
        stat = StatisticalChecker(ctx, samples=3000, seed=21)
        estimate = stat.path_probability(
            parse_path("clean U[0,2] infected"), "clean"
        )
        lo, hi = estimate.confidence_interval(z=3.5)
        assert lo <= analytic <= hi

    def test_mfcsl_end_to_end(self):
        checker = MFModelChecker(diurnal_virus_model())
        assert checker.check("E[<0.2](infected)", M0)
        value = checker.value("EP[<1](clean U[0,1] infected)", M0)
        assert 0.0 < value < 1.0
