"""Tests for the SIS/SIR epidemic models."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.models.epidemic import (
    SirParameters,
    SisParameters,
    sir_model,
    sis_model,
)


class TestSis:
    def test_reproduction_number(self):
        assert SisParameters(beta=2.0, gamma=1.0).reproduction_number == 2.0
        assert SisParameters(beta=1.0, gamma=0.0).reproduction_number == float(
            "inf"
        )

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            SisParameters(beta=-1.0)

    def test_subcritical_dies_out(self):
        model = sis_model(SisParameters(beta=0.5, gamma=1.0))
        traj = model.trajectory(np.array([0.5, 0.5]), horizon=100.0)
        assert traj(100.0)[1] < 1e-6

    def test_supercritical_endemic_level(self):
        model = sis_model(SisParameters(beta=3.0, gamma=1.0))
        traj = model.trajectory(np.array([0.99, 0.01]), horizon=100.0)
        assert traj(100.0)[1] == pytest.approx(1 - 1 / 3.0, abs=1e-6)

    def test_labels(self):
        local = sis_model().local
        assert local.states_with_label("infected") == frozenset({1})
        assert local.states_with_label("healthy") == frozenset({0})


class TestSir:
    def test_classic_sir_depletes_infected(self):
        model = sir_model(SirParameters(beta=3.0, gamma=1.0, xi=0.0))
        traj = model.trajectory(np.array([0.99, 0.01, 0.0]), horizon=100.0)
        m_end = traj(100.0)
        assert m_end[1] < 1e-4  # epidemic burns out
        assert m_end[2] > 0.5  # most got infected at some point

    def test_final_size_relation(self):
        """Classic SIR final size: s_inf = s0 exp(-R0 (1 - s_inf))."""
        r0 = 2.0
        model = sir_model(SirParameters(beta=r0, gamma=1.0, xi=0.0))
        traj = model.trajectory(np.array([0.999, 0.001, 0.0]), horizon=300.0)
        s_inf = traj(300.0)[0]
        # Solve the implicit relation numerically for comparison.
        from scipy.optimize import brentq

        s0 = 0.999
        implicit = lambda s: s - s0 * np.exp(-r0 * (1.0 - s + 0.001 * 0))
        # account for initial infected: s_inf = s0 exp(-R0 (1 - s_inf))
        root = brentq(lambda s: s - s0 * np.exp(-r0 * (1 - s)), 1e-9, 0.9999)
        assert s_inf == pytest.approx(root, abs=5e-3)

    def test_sirs_has_endemic_state(self):
        model = sir_model(SirParameters(beta=3.0, gamma=1.0, xi=0.5))
        traj = model.trajectory(np.array([0.99, 0.01, 0.0]), horizon=300.0)
        assert traj(300.0)[1] > 0.05  # infection persists

    def test_sir_without_xi_has_two_states_less(self):
        model = sir_model(SirParameters(xi=0.0))
        assert len(model.local.transitions) == 2
        model2 = sir_model(SirParameters(xi=0.1))
        assert len(model2.local.transitions) == 3
