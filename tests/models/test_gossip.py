"""Tests for the gossip model."""

import numpy as np
import pytest

from repro.checking import MFModelChecker
from repro.exceptions import ModelError
from repro.models.gossip import GossipParameters, gossip_model


class TestGossip:
    def test_structure(self):
        local = gossip_model().local
        assert local.states == ("ignorant", "spreader", "stifler")
        assert local.states_with_label("informed") == frozenset({1, 2})

    def test_rejects_negative_rates(self):
        with pytest.raises(ModelError):
            GossipParameters(push=-1.0)

    def test_rumour_spreads_then_stops(self):
        model = gossip_model(GossipParameters(push=1.0, pull=0.5, forget=0.1))
        traj = model.trajectory(np.array([0.95, 0.05, 0.0]), horizon=200.0)
        m_end = traj(200.0)
        # Spreaders die out; most of the population heard the rumour.
        assert m_end[1] < 1e-4
        assert m_end[2] > 0.5

    def test_classic_gossip_gap(self):
        """Not everyone learns the rumour: a positive ignorant residue
        remains (the classic Daley–Kendall phenomenon)."""
        model = gossip_model(GossipParameters(push=1.0, pull=0.0, forget=0.0))
        traj = model.trajectory(np.array([0.9, 0.1, 0.0]), horizon=300.0)
        assert traj(300.0)[0] > 0.05

    def test_no_spread_without_spreaders(self):
        model = gossip_model()
        traj = model.trajectory(np.array([1.0, 0.0, 0.0]), horizon=10.0)
        assert np.allclose(traj(10.0), [1.0, 0.0, 0.0], atol=1e-9)

    def test_mfcsl_property(self):
        """MF-CSL works on the gossip model out of the box."""
        checker = MFModelChecker(gossip_model())
        m0 = np.array([0.9, 0.1, 0.0])
        assert checker.check("E[<0.2](informed)", m0)
        assert checker.check("EP[>0.05](ignorant U[0,2] informed)", m0)
