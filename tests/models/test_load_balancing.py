"""Tests for the power-of-d load-balancing model."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.meanfield.stationary import stationary_from_long_run
from repro.models.load_balancing import (
    LoadBalancingParameters,
    deep_load_balancing_model,
    load_balancing_model,
    theoretical_tail,
)


class TestParameters:
    def test_rho(self):
        assert LoadBalancingParameters(lam=0.5, mu=2.0).rho == 0.25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lam": -1.0},
            {"mu": 0.0},
            {"d": 0},
            {"buffer": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ModelError):
            LoadBalancingParameters(**kwargs)


class TestStructure:
    def test_state_count(self):
        model = load_balancing_model(LoadBalancingParameters(buffer=6))
        assert model.num_states == 7

    def test_labels(self):
        model = load_balancing_model(LoadBalancingParameters(buffer=4))
        local = model.local
        assert local.states_with_label("idle") == frozenset({0})
        assert local.states_with_label("full") == frozenset({4})
        assert 4 in local.states_with_label("congested")


class TestDynamics:
    def test_mass_conserved(self):
        model = load_balancing_model()
        k = model.num_states
        m0 = np.zeros(k)
        m0[0] = 1.0
        traj = model.trajectory(m0, horizon=20.0)
        for t in (5.0, 20.0):
            assert traj(t).sum() == pytest.approx(1.0)

    def test_d1_reduces_to_mm1_tail(self):
        """d = 1 is plain random routing: geometric stationary queue."""
        params = LoadBalancingParameters(lam=0.5, mu=1.0, d=1, buffer=10)
        model = load_balancing_model(params)
        k = model.num_states
        m0 = np.full(k, 1.0 / k)
        steady = stationary_from_long_run(model, m0, drift_tol=1e-10)
        # M/M/1 with buffer: m_k ∝ rho^k.
        rho = 0.5
        expected = rho ** np.arange(k)
        expected /= expected.sum()
        assert np.allclose(steady, expected, atol=1e-4)

    def test_power_of_two_tail_decays_doubly_exponentially(self):
        params = LoadBalancingParameters(lam=0.7, mu=1.0, d=2, buffer=8)
        model = load_balancing_model(params)
        k = model.num_states
        m0 = np.zeros(k)
        m0[0] = 1.0
        steady = stationary_from_long_run(model, m0, drift_tol=1e-10)
        tails = np.array([steady[i:].sum() for i in range(k)])
        for level in (1, 2, 3):
            assert tails[level] == pytest.approx(
                theoretical_tail(params, level), abs=0.02
            )
        # d=2 beats d=1 dramatically at deeper levels.
        assert tails[3] < theoretical_tail(
            LoadBalancingParameters(lam=0.7, mu=1.0, d=1, buffer=8), 3
        )

    def test_theoretical_tail_d1(self):
        params = LoadBalancingParameters(lam=0.7, mu=1.0, d=1)
        assert theoretical_tail(params, 3) == pytest.approx(0.7**3)


class TestVectorizedRates:
    """The declared-vectorized arrival rates serve scalar and batch."""

    def test_batch_rows_match_scalar_calls(self):
        model = load_balancing_model(LoadBalancingParameters(buffer=9))
        local = model.local
        rng = np.random.default_rng(7)
        batch = rng.dirichlet(np.ones(model.num_states), size=5)
        for transition in local.transitions:
            if transition.constant:
                continue  # service rates mu stay plain constants
            rate = transition.rate
            assert getattr(rate, "vectorized", False)
            batched = rate(batch, 0.0)
            assert batched.shape == (len(batch),)
            for row, value in zip(batch, batched):
                assert rate(row, 0.0) == pytest.approx(value)

    def test_generator_rows_sum_to_zero_on_batch_path(self):
        model = load_balancing_model(LoadBalancingParameters(buffer=9))
        rng = np.random.default_rng(11)
        occ = rng.dirichlet(np.ones(model.num_states))
        q = model.local.generator(occ)
        np.testing.assert_allclose(q.sum(axis=1), 0.0, atol=1e-9)


class TestDeepModel:
    def test_structure_matches_shallow_dynamics(self):
        deep = deep_load_balancing_model(buffer=40, lam=0.7)
        shallow = load_balancing_model(
            LoadBalancingParameters(lam=0.7, mu=1.0, d=2, buffer=40)
        )
        assert deep.num_states == shallow.num_states == 41
        occ = 0.5 ** np.arange(41)
        occ /= occ.sum()
        np.testing.assert_allclose(
            deep.local.generator(occ), shallow.local.generator(occ)
        )

    def test_deep_buffer_is_structurally_sparse(self):
        model = deep_load_balancing_model(buffer=500)
        compiled = model.local.compiled_generator()
        k = model.num_states
        assert k == 501
        assert compiled.structural_density <= 3.0 / k + 1e-12
