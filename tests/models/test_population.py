"""The truncated effectively-unbounded population model."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.models.population import (
    PopulationParameters,
    choose_capacity,
    poisson_occupancy,
    population_model,
    truncation_boundary_mass,
)

#: Small enough to keep trajectory solves cheap, large enough that the
#: truncation machinery is exercised for real.
SMALL = PopulationParameters(lam=20.0, mu=1.0, crowding=0.25)


class TestParameters:
    def test_rho(self):
        assert PopulationParameters(lam=8.0, mu=2.0).rho == 4.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lam": 0.0},
            {"lam": -1.0},
            {"mu": 0.0},
            {"crowding": -0.1},
            {"capacity": 1},
            {"epsilon": 0.0},
            {"epsilon": 1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ModelError):
            PopulationParameters(**kwargs)

    def test_explicit_capacity_wins(self):
        params = PopulationParameters(lam=20.0, capacity=77)
        assert params.resolved_capacity() == 77

    def test_choose_capacity_scales_with_load(self):
        small = choose_capacity(20.0, 1.0)
        large = choose_capacity(800.0, 1.0)
        # Above the mean, with sub-linear (Poisson-tail) headroom.
        assert 20 < small < 80
        assert 800 < large < 1200
        assert large - 800 < small * (800 / 20)  # not linear headroom

    def test_choose_capacity_tightens_with_epsilon(self):
        assert choose_capacity(50.0, 1.0, 1e-12) > choose_capacity(
            50.0, 1.0, 1e-6
        )

    def test_choose_capacity_rejects_bad_mu(self):
        with pytest.raises(ModelError):
            choose_capacity(10.0, 0.0)


class TestStructure:
    def test_state_count_and_labels(self):
        model = population_model(SMALL)
        capacity = SMALL.resolved_capacity()
        local = model.local
        assert model.num_states == capacity + 1
        assert local.states_with_label("extinct") == frozenset({0})
        assert local.states_with_label("boundary") == frozenset({capacity})
        scarce = local.states_with_label("scarce")
        abundant = local.states_with_label("abundant")
        assert scarce | abundant == frozenset(range(capacity + 1))
        assert not scarce & abundant
        # The scarce/abundant split sits at half the uncrowded mean.
        assert max(scarce) < 0.5 * SMALL.rho <= min(abundant)

    def test_tridiagonal_density(self):
        model = population_model(SMALL)
        compiled = model.local.compiled_generator()
        k = model.num_states
        assert compiled.structural_density <= 3.0 / k + 1e-12


class TestDynamics:
    def test_generator_rows_sum_to_zero(self):
        model = population_model(SMALL)
        occ = poisson_occupancy(SMALL)
        q = model.local.generator(occ)
        np.testing.assert_allclose(q.sum(axis=1), 0.0, atol=1e-9)

    def test_drift_conserves_mass(self):
        model = population_model(SMALL)
        occ = poisson_occupancy(SMALL)
        assert model.drift(0.0, occ).sum() == pytest.approx(0.0, abs=1e-9)

    def test_crowding_slows_births(self):
        crowded = population_model(SMALL)
        free = population_model(
            PopulationParameters(
                lam=SMALL.lam,
                mu=SMALL.mu,
                crowding=0.0,
                capacity=SMALL.resolved_capacity(),
            )
        )
        occ = poisson_occupancy(SMALL)
        q_crowded = crowded.local.generator(occ)
        q_free = free.local.generator(occ)
        # Birth (superdiagonal) rates drop, death rates are untouched.
        assert np.all(np.diag(q_crowded, 1) <= np.diag(q_free, 1) + 1e-12)
        np.testing.assert_allclose(
            np.diag(q_crowded, -1), np.diag(q_free, -1)
        )

    def test_trajectory_keeps_boundary_mass_negligible(self):
        model = population_model(SMALL)
        occ = poisson_occupancy(SMALL)
        traj = model.trajectory(occ, horizon=2.0)
        m = traj(2.0)
        assert m.sum() == pytest.approx(1.0, abs=1e-8)
        assert truncation_boundary_mass(m) < 1e-8


class TestPoissonOccupancy:
    def test_normalized_and_peaked_at_mean(self):
        occ = poisson_occupancy(SMALL)
        assert occ.sum() == pytest.approx(1.0)
        assert np.all(occ >= 0.0)
        assert abs(int(np.argmax(occ)) - SMALL.rho) <= 1

    def test_deep_capacity_does_not_underflow(self):
        params = PopulationParameters(lam=800.0, mu=1.0)
        occ = poisson_occupancy(params)
        assert occ.sum() == pytest.approx(1.0)
        assert truncation_boundary_mass(occ) < 1e-6
        assert np.all(np.isfinite(occ))
