"""Tests for the virus running-example model (Figure 2, Table II)."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.exceptions import ModelError
from repro.models.virus import (
    SETTING_1,
    SETTING_2,
    VirusParameters,
    overall_ode_matrix,
    virus_model,
    virus_model_epidemiological,
)


class TestParameters:
    def test_table_ii_setting_1(self):
        assert (SETTING_1.k1, SETTING_1.k2, SETTING_1.k3) == (0.9, 0.1, 0.01)
        assert (SETTING_1.k4, SETTING_1.k5) == (0.3, 0.3)

    def test_table_ii_setting_2(self):
        assert (SETTING_2.k1, SETTING_2.k2, SETTING_2.k3) == (5.0, 0.02, 0.01)
        assert (SETTING_2.k4, SETTING_2.k5) == (0.5, 0.5)

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            VirusParameters(k1=-1, k2=0, k3=0, k4=0, k5=0)


class TestStructure:
    def test_states_and_labels(self):
        local = virus_model().local
        assert local.states == ("s1", "s2", "s3")
        assert local.states_with_label("infected") == frozenset({1, 2})
        assert local.states_with_label("not_infected") == frozenset({0})
        assert local.states_with_label("active") == frozenset({2})
        assert local.states_with_label("inactive") == frozenset({1})

    def test_transition_count(self):
        assert len(virus_model().local.transitions) == 5

    def test_generator_matches_paper_matrix(self):
        """The Q(m̄(t)) matrix printed in Section VI."""
        model = virus_model(SETTING_1)
        m = np.array([0.8, 0.15, 0.05])
        q = model.local.generator(m)
        k1_star = 0.9 * 0.05 / 0.8
        expected = np.array(
            [
                [-k1_star, k1_star, 0.0],
                [0.1, -0.11, 0.01],
                [0.3, 0.3, -0.6],
            ]
        )
        assert np.allclose(q, expected, atol=1e-12)


class TestSmartVirusLinearity:
    def test_drift_is_linear(self):
        """k1* = k1 m3/m1 makes the overall ODE linear: ṁ = m A."""
        model = virus_model(SETTING_1)
        a = overall_ode_matrix(SETTING_1)
        rng = np.random.default_rng(0)
        for _ in range(5):
            m = rng.dirichlet(np.ones(3)) * 0.98 + 0.005
            m = m / m.sum()
            assert np.allclose(model.drift(0.0, m), m @ a, atol=1e-9)

    def test_closed_form_trajectory(self):
        model = virus_model(SETTING_1)
        a = overall_ode_matrix(SETTING_1)
        m0 = np.array([0.8, 0.15, 0.05])
        traj = model.trajectory(m0, horizon=15.0)
        assert np.allclose(traj(15.0), m0 @ expm(a * 15.0), atol=1e-7)


class TestEpidemiologicalVariant:
    def test_infection_rate_no_division(self):
        model = virus_model_epidemiological(SETTING_1)
        m = np.array([0.8, 0.15, 0.05])
        q = model.local.generator(m)
        assert q[0, 1] == pytest.approx(0.9 * 0.05)

    def test_drift_is_nonlinear(self):
        model = virus_model_epidemiological(SETTING_1)
        m = np.array([0.5, 0.25, 0.25])
        half = model.drift(0.0, m)
        # Scaling the infected fraction scales the infection term
        # quadratically, so drift(m)[0] is not linear in m.
        m2 = np.array([0.5, 0.0, 0.5])
        # In the smart model d m1 = -k1 m3 + ...; here -k1 m3 m1.
        assert half[0] != pytest.approx((m @ overall_ode_matrix(SETTING_1))[0])

    def test_setting2_defaults(self):
        model = virus_model_epidemiological(SETTING_2)
        assert model.num_states == 3


class TestDynamics:
    def test_setting1_virus_dies_out(self):
        model = virus_model(SETTING_1)
        traj = model.trajectory(np.array([0.8, 0.15, 0.05]), horizon=200.0)
        m_end = traj(200.0)
        assert m_end[0] > 0.99

    def test_setting2_infection_spreads(self):
        """Setting 2 is supercritical: infection grows from the start."""
        model = virus_model(SETTING_2)
        traj = model.trajectory(np.array([0.85, 0.1, 0.05]), horizon=15.0)
        infected_start = 0.15
        m15 = traj(15.0)
        assert m15[1] + m15[2] > infected_start * 2
