"""Reproduction of the paper's first worked example (Section VI).

Formula: Ψ = EP_{<0.3}(not_infected U[0,1] infected), Setting 1,
m̄ = (0.8, 0.15, 0.05).

The paper's printed intermediate values are internally inconsistent with
its own Table II + ODE (21) (see EXPERIMENTS.md): with the printed
parameters the infection *decays*, giving Π'_{s1,s1}(0,1) ≈ 0.958 rather
than the paper's 0.91.  These tests therefore pin down our *measured*
values (regression-locked) and assert every conclusion that is
parameter-independent — most importantly the satisfaction verdict itself,
which agrees with the paper under both until-start conventions.
"""

import numpy as np
import pytest

from repro.checking import CheckOptions, MFModelChecker
from repro.checking.reachability import until_probabilities_simple
from repro.checking.transform import absorbing_generator_function
from repro.ctmc.inhomogeneous import solve_forward_kolmogorov
from repro.logic.ast import TimeInterval
from repro.models.virus import SETTING_1, virus_model

FORMULA = "EP[<0.3](not_infected U[0,1] infected)"
M0 = np.array([0.8, 0.15, 0.05])

NOT_INFECTED = frozenset({0})
INFECTED = frozenset({1, 2})


@pytest.fixture(scope="module")
def checker():
    return MFModelChecker(virus_model(SETTING_1))


@pytest.fixture(scope="module")
def paper_checker():
    """Checker using the convention the paper's Example 1 computes."""
    return MFModelChecker(
        virus_model(SETTING_1), CheckOptions(start_convention="phi1")
    )


class TestReachabilityMatrix:
    def test_transient_matrix_structure(self, checker):
        """Π'(0,1) of the modified chain: infected states absorbing.

        Paper prints ((0.91, 0.09, 0), (0, 1, 0), (0, 0, 1)); with the
        printed Table II parameters the measured value of the (s1, s1)
        entry is 0.9585 (regression-locked).
        """
        ctx = checker.context(M0)
        q_mod = absorbing_generator_function(
            ctx.generator_function(), INFECTED
        )
        pi = solve_forward_kolmogorov(q_mod, 0.0, 1.0)
        # Absorbing rows are exact identity rows.
        assert np.allclose(pi[1], [0.0, 1.0, 0.0], atol=1e-12)
        assert np.allclose(pi[2], [0.0, 0.0, 1.0], atol=1e-12)
        # Rows are stochastic.
        assert np.allclose(pi.sum(axis=1), 1.0, atol=1e-9)
        # Measured value with the printed parameters.
        assert pi[0, 0] == pytest.approx(0.957645, abs=1e-4)
        # Mass leaving s1 lands in s2 only (s1 has a single transition).
        assert pi[0, 2] == pytest.approx(0.0, abs=1e-9)

    def test_prob_per_state_phi1_convention(self, paper_checker):
        """Paper: Prob = (0.09, 0, 0); measured: (0.0424, 0, 0)."""
        ctx = paper_checker.context(M0)
        probs = until_probabilities_simple(
            ctx, NOT_INFECTED, INFECTED, TimeInterval(0, 1)
        )
        assert probs[0] == pytest.approx(0.042355, abs=1e-4)
        assert probs[1] == 0.0
        assert probs[2] == 0.0


class TestExpectedProbability:
    def test_value_phi1_convention(self, paper_checker):
        """Paper computes 0.8·0.09 = 0.072; we measure 0.8·0.0416."""
        value = paper_checker.value(FORMULA, M0)
        assert value == pytest.approx(0.8 * 0.042355, abs=1e-4)

    def test_value_standard_convention(self, checker):
        """Definition-4 semantics adds the infected mass (0.2)."""
        value = checker.value(FORMULA, M0)
        assert value == pytest.approx(0.2 + 0.8 * 0.042355, abs=1e-4)

    def test_verdict_matches_paper_either_way(self, checker, paper_checker):
        """Both conventions agree with the paper's verdict: m̄ ⊨ Ψ."""
        assert checker.check(FORMULA, M0)
        assert paper_checker.check(FORMULA, M0)


class TestConditionalSatSet:
    def test_formula_holds_on_whole_horizon(self, checker, paper_checker):
        """Paper claims cSat = [0, 14.5412); with the printed Table II
        parameters the infection decays monotonically, so the EP value
        never rises to 0.3 and the formula holds on all of [0, 20]
        (measured; see EXPERIMENTS.md for the discrepancy analysis)."""
        for chk in (checker, paper_checker):
            result = chk.conditional_sat(FORMULA, M0, 20.0)
            assert result.approx_equal(
                chk.conditional_sat("tt", M0, 20.0), tol=1e-9
            )

    def test_ep_curve_decreases(self, checker):
        g = checker.expected_probability_curve(
            "not_infected U[0,1] infected", M0, 20.0
        )
        values = [g(t) for t in (0.0, 5.0, 10.0, 20.0)]
        assert all(a > b for a, b in zip(values, values[1:]))
        assert max(values) < 0.3
