"""Reproduction of the paper's nested worked example (Section VI).

Formula:
    Ψ = E_{>0.8}(P_{>0.9}(infected U[0,15] Φ1)) ∧ E_{<0.1}(active),
    Φ1 = P_{>0.8}(tt U[0,0.5] infected),
Setting 2, m̄ = (0.85, 0.1, 0.05).

The paper computes, with the discontinuity point T1 = 10.443:

- Π'(0, 10.443) with survival 0.53 / reach 0.47 from s1 — **we match
  both digits exactly** (measured 0.5302 / 0.4698 under printed
  Setting 2, validating our solvers against the authors' Mathematica);
- ζ(T1) zero except (s*, s*), Υ_{s1,s*}(0,15) = 0.47 — matched by the
  literal chain construction;
- Prob(infected U[0,15] Φ1) = (0, 1, 1), E-value 0.15, so Ψ1 is false;
- Ψ2 = E_{<0.1}(active) true; the conjunction false.

The T1 = 10.443 crossing itself is *not* reproducible from the printed
parameters (the inner probability stays ≈ 0.02, far below 0.8; see
EXPERIMENTS.md), so these tests inject the paper's T1 where the paper
does and additionally run the fully self-computed variant, which yields
the same final verdict.
"""

import numpy as np
import pytest

from repro.checking import EvaluationContext, MFModelChecker
from repro.checking.nested import TimeVaryingUntil
from repro.checking.reachability import until_probabilities_simple
from repro.checking.satsets import Piece, PiecewiseSatSet
from repro.logic.ast import TimeInterval
from repro.models.virus import SETTING_2, virus_model

M0 = np.array([0.85, 0.1, 0.05])
T1 = 10.443
INFECTED = frozenset({1, 2})
ALL = frozenset({0, 1, 2})

PSI = (
    "E[>0.8](P[>0.9](infected U[0,15] (P[>0.8](tt U[0,0.5] infected))))"
    " & E[<0.1](active)"
)


@pytest.fixture(scope="module")
def ctx():
    return EvaluationContext(virus_model(SETTING_2), M0)


@pytest.fixture(scope="module")
def solver(ctx):
    """Nested until with the paper's Φ1 satisfaction set injected."""
    gamma2 = PiecewiseSatSet(
        [Piece(0.0, T1, INFECTED), Piece(T1, 15.0, ALL)]
    )
    gamma1 = PiecewiseSatSet.constant(INFECTED, 0.0, 15.0)
    return TimeVaryingUntil(ctx, gamma1, gamma2, TimeInterval(0, 15))


class TestIntermediateMatrices:
    def test_survival_matches_paper_exactly(self, ctx):
        """P(s1 stays clean until 10.443) = 0.53 — two-digit match."""
        probs = until_probabilities_simple(
            ctx, frozenset({0}), INFECTED, TimeInterval(0, T1)
        )
        assert probs[0] == pytest.approx(0.4698, abs=5e-4)

    def test_literal_pi_prime(self, solver):
        """The paper's Π'(0, 10.443) under its literal construction."""
        from repro.checking.transform import goal_generator_literal
        from repro.ctmc.inhomogeneous import solve_forward_kolmogorov

        partition = solver._partition_at(5.0)
        q_of_t = solver.ctx.generator_function()
        pi = solve_forward_kolmogorov(
            lambda t: goal_generator_literal(q_of_t(t), partition),
            0.0,
            T1,
        )
        assert pi[0, 0] == pytest.approx(0.5302, abs=5e-4)
        assert pi[0, 3] == pytest.approx(0.4698, abs=5e-4)
        assert np.allclose(pi[1], [0, 1, 0, 0], atol=1e-12)
        assert np.allclose(pi[2], [0, 0, 1, 0], atol=1e-12)

    def test_second_interval_is_identity(self, solver):
        """After T1 every state is in Γ2, so Π'(T1, 15) = I (paper)."""
        pi = solver.upsilon(T1 + 1e-9, 15.0)
        assert np.allclose(pi, np.eye(4), atol=1e-9)

    def test_literal_upsilon(self, solver):
        """Υ_{s1,s*}(0,15) = 0.47 in the paper's literal reading."""
        ups = solver.upsilon_literal(0.0, 15.0)
        assert ups[0, 3] == pytest.approx(0.4698, abs=5e-4)

    def test_corrected_upsilon_discards_dead_mass(self, solver):
        """Correct semantics: s1 was never an infected (Γ1) state, so no
        valid path from it reaches the goal."""
        assert solver.upsilon(0.0, 15.0)[0, 3] == pytest.approx(0.0, abs=1e-12)


class TestFinalProbabilities:
    def test_prob_vector_matches_paper(self, solver):
        probs = solver.probabilities(0.0)
        assert probs[0] == pytest.approx(0.0, abs=1e-9)
        assert probs[1] == pytest.approx(1.0)
        assert probs[2] == pytest.approx(1.0)

    def test_e_value_is_015_and_psi1_fails(self, solver):
        probs = solver.probabilities(0.0)
        value = float(M0 @ probs)
        assert value == pytest.approx(0.15, abs=1e-9)
        assert not value > 0.8  # paper: 0.85·0 + 0.1·1 + 0.05·1 < 0.8


class TestFullFormulaSelfComputed:
    """End-to-end check with *no* injected satisfaction set."""

    @pytest.fixture(scope="class")
    def checker(self):
        return MFModelChecker(virus_model(SETTING_2))

    def test_psi2_holds(self, checker):
        assert checker.check("E[<0.1](active)", M0)

    def test_psi1_fails(self, checker):
        psi1 = (
            "E[>0.8](P[>0.9](infected U[0,15] "
            "(P[>0.8](tt U[0,0.5] infected))))"
        )
        assert not checker.check(psi1, M0)

    def test_conjunction_fails_like_paper(self, checker):
        assert not checker.check(PSI, M0)

    def test_explanation(self, checker):
        report = checker.explain(PSI, M0)
        values = {text: value for text, value, _ in report}
        verdicts = {text: holds for text, _, holds in report}
        (psi1_text,) = [t for t in values if "U[0,15]" in t]
        (psi2_text,) = [t for t in values if "active" in t]
        assert values[psi1_text] == pytest.approx(0.15, abs=1e-6)
        assert not verdicts[psi1_text]
        assert values[psi2_text] == pytest.approx(0.05, abs=1e-9)
        assert verdicts[psi2_text]

    def test_inner_threshold_never_crossed(self, checker):
        """Why the self-computed variant has no discontinuity: the inner
        probability stays two orders of magnitude below 0.8."""
        curve = checker.local_probability_curve(
            "tt U[0,0.5] infected", M0, 15.0
        )
        values = [curve.value(t, 0) for t in np.linspace(0, 15, 31)]
        assert max(values) < 0.2
        crossings = curve.crossing_times(0, 0.8)
        assert crossings == []
