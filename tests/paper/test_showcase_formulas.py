"""The three showcase MF-CSL formulas of Section III, Example 2.

1. E_{>0.8}(infected)      — "the system is infected";
2. ES_{>=0.1}(infected)    — steady-state infection level;
3. EP_{<0.4}(infected U[0,5] not_infected) — recovery probability.
"""

import numpy as np
import pytest

from repro.checking import MFModelChecker
from repro.models.virus import SETTING_1, SETTING_2, virus_model


@pytest.fixture(scope="module")
def checker1():
    return MFModelChecker(virus_model(SETTING_1))


@pytest.fixture(scope="module")
def checker2():
    return MFModelChecker(virus_model(SETTING_2))


class TestShowcase1SystemInfected:
    def test_heavily_infected_system(self, checker1):
        assert checker1.check("E[>0.8](infected)", np.array([0.1, 0.5, 0.4]))

    def test_lightly_infected_system(self, checker1):
        assert not checker1.check(
            "E[>0.8](infected)", np.array([0.8, 0.15, 0.05])
        )

    def test_boundary_is_strict(self, checker1):
        exactly = np.array([0.2, 0.5, 0.3])  # infected fraction exactly 0.8
        assert not checker1.check("E[>0.8](infected)", exactly)
        assert checker1.check("E[>=0.8](infected)", exactly)


class TestShowcase2SteadyStateInfection:
    def test_setting1_virus_dies_so_false(self, checker1):
        """Setting 1's fluid limit is virus-free: the property fails."""
        assert not checker1.check(
            "ES[>=0.1](infected)", np.array([0.8, 0.15, 0.05])
        )

    def test_setting2_virus_persists_so_true(self, checker2):
        """Setting 2 is supercritical: infection persists in steady
        state, so the 10% steady-state infection property holds."""
        assert checker2.check(
            "ES[>=0.1](infected)", np.array([0.85, 0.1, 0.05])
        )

    def test_value_reported(self, checker2):
        value = checker2.value(
            "ES[>=0.1](infected)", np.array([0.85, 0.1, 0.05])
        )
        assert 0.1 <= value <= 1.0


class TestShowcase3RecoveryProbability:
    def test_recovery_within_five_units(self, checker1):
        """EP_{<0.4}(infected U[0,5] not_infected): the probability of a
        random computer to recover within 5 time units."""
        m0 = np.array([0.8, 0.15, 0.05])
        value = checker1.value(
            "EP[<0.4](infected U[0,5] not_infected)", m0
        )
        # A clean computer satisfies the until trivially (Φ2 at time 0),
        # so the value is at least m1 = 0.8 under standard semantics and
        # the <0.4 bound fails.
        assert value > 0.8
        assert not checker1.check(
            "EP[<0.4](infected U[0,5] not_infected)", m0
        )

    def test_recovery_among_infected_only(self, checker1):
        """The phi1 convention isolates the infected computers' recovery
        probability, which is the reading the paper intends."""
        from repro.checking import CheckOptions

        paper = MFModelChecker(
            virus_model(SETTING_1), CheckOptions(start_convention="phi1")
        )
        m0 = np.array([0.8, 0.15, 0.05])
        value = paper.value("EP[<0.4](infected U[0,5] not_infected)", m0)
        # Only the 20% infected mass can contribute.
        assert value < 0.2
        assert paper.check("EP[<0.4](infected U[0,5] not_infected)", m0)

    def test_recovery_probability_is_high_for_infected_states(self, checker1):
        """k2/k5 recoveries within 5 units are likely for an individual."""
        curve = checker1.local_probability_curve(
            "infected U[0,5] not_infected", np.array([0.8, 0.15, 0.05]), 1.0
        )
        assert curve.value(0.0, 1) > 0.3  # inactive infected recovers often
        assert curve.value(0.0, 2) > 0.5  # active recovers faster (k5=0.3)
