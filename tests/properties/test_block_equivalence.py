"""Block (multi-vector) kernels agree with looped single-vector calls.

The batched-checking tentpole stacks ``M`` initial vectors into one
``(M, K)`` block and carries it through every transient kernel in one
matmat pass per cell / series term.  A block answer must be the *same*
answer: row ``i`` of every block result has to match the corresponding
single-vector call to far better than solver tolerance, on the dense
propagator engine, the raw transient kernels and both context backends
across the model zoo — and the batched until front-end
(``until_probabilities_simple(initial=...)``,
``ProbabilityCurve.expected_many``) must reduce to per-query dots with
the shared probability vectors.
"""

import numpy as np
import pytest
import scipy.sparse

from repro.checking.context import EvaluationContext
from repro.checking.options import CheckOptions
from repro.checking.reachability import until_probabilities_simple
from repro.checking.transform import absorbing_generator_function
from repro.ctmc.propagators import PropagatorEngine
from repro.ctmc.transient import transient_distribution
from repro.exceptions import ModelError
from repro.logic.ast import TimeInterval
from repro.models import (
    load_balancing_model,
    sir_model,
    virus_model,
)
from repro.models.virus import SETTING_1, SETTING_2

#: Block vs looped equivalence bound (matches the sparse-equivalence
#: acceptance bound: any disagreement is structural, not solver noise).
TOL = 1e-10

TIGHT = dict(ode_rtol=1e-11, ode_atol=1e-13, propagator_tol=1e-11)

ZOO = {
    "virus1": lambda: virus_model(SETTING_1),
    "virus2": lambda: virus_model(SETTING_2),
    "sir": sir_model,
    "loadbalance": load_balancing_model,
}

ZOO_NAMES = sorted(ZOO)


def q_periodic(t: float) -> np.ndarray:
    a = 1.0 + 0.5 * np.sin(t)
    b = 0.3 + 0.2 * np.cos(0.7 * t)
    return np.array(
        [
            [-a, a, 0.0],
            [b, -(a + b), a],
            [0.0, 0.2, -0.2],
        ]
    )


def _occupancy(k: int) -> np.ndarray:
    occ = 0.25 ** np.arange(k, dtype=float)
    return occ / occ.sum()


def _block(m: int, k: int) -> np.ndarray:
    rng = np.random.default_rng(k * 1000 + m)
    return rng.uniform(0.1, 1.0, size=(m, k))


class TestEngineBlockApply:
    """``PropagatorEngine.apply`` on ``(M, K)`` / ``(K, M)`` blocks."""

    def test_left_block_equals_matrix_product(self):
        engine = PropagatorEngine(q_periodic, tol=1e-9)
        a, b = 0.3, 2.1
        block = _block(5, 3)
        out = engine.apply(block, a, b, side="left")
        assert out.shape == (5, 3)
        pi = engine.propagate(a, b)
        assert float(np.max(np.abs(out - block @ pi))) <= TOL

    def test_right_block_equals_matrix_product(self):
        engine = PropagatorEngine(q_periodic, tol=1e-9)
        a, b = 0.0, 1.7
        cols = _block(3, 4).reshape(3, 4)  # (K, M) columns
        out = engine.apply(cols, a, b, side="right")
        assert out.shape == (3, 4)
        pi = engine.propagate(a, b)
        assert float(np.max(np.abs(out - pi @ cols))) <= TOL

    def test_block_rows_match_single_vector_calls(self):
        engine = PropagatorEngine(q_periodic, tol=1e-9)
        a, b = 0.5, 1.9
        block = _block(4, 3)
        out = engine.apply(block, a, b, side="left")
        for i in range(block.shape[0]):
            single = engine.apply(block[i], a, b, side="left")
            assert float(np.max(np.abs(out[i] - single))) <= TOL

    def test_apply_many_blocks(self):
        engine = PropagatorEngine(q_periodic, tol=1e-9)
        ts = np.array([0.0, 0.4, 1.1])
        block = _block(4, 3)
        stacked = engine.apply_many(ts, 0.8, block, side="left")
        assert stacked.shape == (3, 4, 3)
        for j, t in enumerate(ts):
            one = engine.apply(block, float(t), float(t) + 0.8, side="left")
            assert float(np.max(np.abs(stacked[j] - one))) <= TOL

    def test_zero_window_is_identity_action(self):
        engine = PropagatorEngine(q_periodic, tol=1e-9)
        block = _block(2, 3)
        out = engine.apply(block, 1.3, 1.3, side="left")
        assert np.allclose(out, block)

    def test_validation_errors(self):
        engine = PropagatorEngine(q_periodic, tol=1e-9)
        v = np.ones(3)
        with pytest.raises(ModelError):
            engine.apply(v, 1.0, 0.5)
        with pytest.raises(ModelError):
            engine.apply(v, 0.0, 1.0, side="sideways")


class TestKernelBlocks:
    """Raw ``transient_distribution`` kernels accept stacked initials."""

    Q = np.array(
        [
            [-1.0, 0.7, 0.3],
            [0.2, -0.6, 0.4],
            [0.0, 0.5, -0.5],
        ]
    )

    @pytest.mark.parametrize(
        "method", ["expm", "expm_multiply", "uniformization"]
    )
    def test_block_matches_loop(self, method):
        block = _block(6, 3)
        out = transient_distribution(block, self.Q, 0.9, method=method)
        assert out.shape == block.shape
        for i in range(block.shape[0]):
            single = transient_distribution(
                block[i], self.Q, 0.9, method=method
            )
            assert float(np.max(np.abs(out[i] - single))) <= TOL

    @pytest.mark.parametrize("method", ["expm_multiply", "uniformization"])
    def test_sparse_generator_block(self, method):
        q = scipy.sparse.csr_matrix(self.Q)
        block = _block(4, 3)
        dense_out = transient_distribution(
            block, self.Q, 1.3, method=method
        )
        sparse_out = transient_distribution(block, q, 1.3, method=method)
        assert float(np.max(np.abs(sparse_out - dense_out))) <= TOL


class TestContextBlockApply:
    """``EvaluationContext.transient_apply`` block path, both backends."""

    def _context(self, model, backend, **extra):
        options = dict(TIGHT)
        options.update(extra)
        return EvaluationContext(
            model,
            _occupancy(model.num_states),
            options=CheckOptions(matrix_backend=backend, **options),
        )

    @pytest.mark.parametrize("side", ["left", "right"])
    @pytest.mark.parametrize("name", ZOO_NAMES)
    def test_dense_propagator_block_matches_loop(self, name, side):
        model = ZOO[name]()
        k = model.num_states
        ctx = self._context(
            model, "dense", transient_method="propagator"
        )
        absorbed = frozenset({k - 1})
        signature = ("absorbing", absorbed)
        q = absorbing_generator_function(
            ctx.generator_function(), absorbed
        )
        block = _block(5, k)
        out = ctx.transient_apply(
            signature, q, 0.1, 0.9, block, side=side
        )
        assert out.shape == block.shape
        for i in range(block.shape[0]):
            single = ctx.transient_apply(
                signature, q, 0.1, 0.9, block[i], side=side
            )
            assert float(np.max(np.abs(out[i] - single))) <= TOL

    @pytest.mark.parametrize("side", ["left", "right"])
    @pytest.mark.parametrize("name", ZOO_NAMES)
    def test_sparse_block_matches_dense_loop(self, name, side):
        model = ZOO[name]()
        k = model.num_states
        dense_ctx = self._context(model, "dense")
        sparse_ctx = self._context(model, "sparse")
        absorbed = frozenset({k - 1})
        signature = ("absorbing", absorbed)
        q_dense = absorbing_generator_function(
            dense_ctx.generator_function(), absorbed
        )
        q_sparse = absorbing_generator_function(
            sparse_ctx.generator_function(), absorbed
        )
        block = _block(4, k)
        out = sparse_ctx.transient_apply(
            signature, q_sparse, 0.2, 0.7, block, side=side
        )
        assert out.shape == block.shape
        for i in range(block.shape[0]):
            single = dense_ctx.transient_apply(
                signature, q_dense, 0.2, 0.7, block[i], side=side
            )
            assert float(np.max(np.abs(out[i] - single))) <= TOL

    def test_dense_default_method_block_matches_loop(self):
        # transient_method="ode" (the default) serves blocks through the
        # cached matrix: same answers, one solve.
        model = ZOO["virus1"]()
        k = model.num_states
        ctx = self._context(model, "dense")
        absorbed = frozenset({k - 1})
        signature = ("absorbing", absorbed)
        q = absorbing_generator_function(
            ctx.generator_function(), absorbed
        )
        block = _block(3, k)
        for side in ("left", "right"):
            out = ctx.transient_apply(
                signature, q, 0.0, 1.0, block, side=side
            )
            for i in range(block.shape[0]):
                single = ctx.transient_apply(
                    signature, q, 0.0, 1.0, block[i], side=side
                )
                assert float(np.max(np.abs(out[i] - single))) <= TOL


class TestBatchedUntilFrontEnd:
    """Stacked initials through the until/curve front-end."""

    def _ctx(self, model):
        return EvaluationContext(
            model,
            _occupancy(model.num_states),
            options=CheckOptions(matrix_backend="dense", **TIGHT),
        )

    @pytest.mark.parametrize("name", ZOO_NAMES)
    def test_until_initial_block_matches_dots(self, name):
        model = ZOO[name]()
        k = model.num_states
        ctx = self._ctx(model)
        gamma2 = frozenset({k - 1})
        gamma1 = frozenset(range(k - 1))
        interval = TimeInterval(0.25, 1.0)
        probs = until_probabilities_simple(ctx, gamma1, gamma2, interval)
        initials = _block(6, k)
        initials /= initials.sum(axis=1, keepdims=True)
        batched = until_probabilities_simple(
            ctx, gamma1, gamma2, interval, initial=initials
        )
        assert batched.shape == (6,)
        assert float(np.max(np.abs(batched - initials @ probs))) <= TOL
        one = until_probabilities_simple(
            ctx, gamma1, gamma2, interval, initial=initials[0]
        )
        assert isinstance(one, float)
        assert abs(one - float(initials[0] @ probs)) <= TOL

    def test_expected_many_block(self):
        model = ZOO["virus1"]()
        k = model.num_states
        ctx = self._ctx(model)
        checker = ctx.local_checker()
        from repro.logic.parser import parse_path

        curve = checker.path_curve(
            parse_path("not_infected U[0,1] infected"), 2.0
        )
        ts = np.linspace(0.0, 2.0, 7)
        initials = _block(4, k)
        initials /= initials.sum(axis=1, keepdims=True)
        many = curve.expected_many(ts, initials)
        assert many.shape == (7, 4)
        vals = curve.values_many(ts)
        assert float(np.max(np.abs(many - vals @ initials.T))) <= TOL
        one = curve.expected_many(ts, initials[0])
        assert one.shape == (7,)
        assert float(np.max(np.abs(one - many[:, 0]))) <= TOL
