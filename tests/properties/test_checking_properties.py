"""Property-based cross-validation of the checkers.

For *random constant-rate models* the mean-field local checker must
agree with the classical uniformization-based CSL checker on until
probabilities — a strong differential test of the entire inhomogeneous
pipeline (the two implementations share no numerical code paths).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking.context import EvaluationContext
from repro.checking.homogeneous import HomogeneousChecker
from repro.checking.local import LocalChecker
from repro.logic.ast import Atomic, Bound, Not, Probability, TimeInterval, Until
from repro.meanfield import MeanFieldModel
from repro.meanfield.local_model import LocalModel


def random_homogeneous_setups():
    """(model, labels-per-index) pairs with constant rates."""

    def build(spec):
        k, entries = spec
        states = [f"s{i}" for i in range(k)]
        transitions = {
            (states[i], states[j]): rate for (i, j), rate in entries.items()
        }
        labels = {
            states[i]: (["goal"] if i == k - 1 else ["work"])
            for i in range(k)
        }
        local = LocalModel(states, transitions, labels)
        return local

    return st.integers(2, 4).flatmap(
        lambda k: st.dictionaries(
            st.tuples(st.integers(0, k - 1), st.integers(0, k - 1)).filter(
                lambda ij: ij[0] != ij[1]
            ),
            st.floats(0.05, 3.0, allow_nan=False),
            min_size=1,
            max_size=k * (k - 1),
        ).map(lambda entries: (k, entries))
    ).map(build)


intervals = st.tuples(
    st.floats(0.0, 1.5, allow_nan=False), st.floats(0.1, 2.0, allow_nan=False)
).map(lambda ab: TimeInterval(min(ab), min(ab) + ab[1]))


class TestDifferentialAgainstClassicalChecker:
    @given(random_homogeneous_setups(), intervals)
    @settings(max_examples=25, deadline=None)
    def test_until_probabilities_agree(self, local, interval):
        model = MeanFieldModel(local)
        k = local.num_states
        ctx = EvaluationContext(model, np.full(k, 1.0 / k))
        ours = LocalChecker(ctx).path_probabilities(
            Until(interval, Atomic("work"), Atomic("goal"))
        )
        classical = HomogeneousChecker(
            local.constant_generator(),
            {i: local.labels_of(local.state_name(i)) for i in range(k)},
        ).path_probabilities(Until(interval, Atomic("work"), Atomic("goal")))
        assert np.allclose(ours, classical, atol=1e-6)

    @given(random_homogeneous_setups(), st.floats(0.05, 0.95))
    @settings(max_examples=15, deadline=None)
    def test_sat_sets_agree(self, local, threshold):
        model = MeanFieldModel(local)
        k = local.num_states
        ctx = EvaluationContext(model, np.full(k, 1.0 / k))
        phi = Probability(
            Bound(">", round(threshold, 3)),
            Until(TimeInterval(0.0, 1.0), Atomic("work"), Atomic("goal")),
        )
        ours = LocalChecker(ctx).sat_at(phi)
        classical = HomogeneousChecker(
            local.constant_generator(),
            {i: local.labels_of(local.state_name(i)) for i in range(k)},
        ).sat(phi)
        # Probabilities within probability_tol of the threshold can
        # legitimately flip between implementations; exclude them.
        probs = LocalChecker(ctx).path_probabilities(phi.path)
        stable = {
            s
            for s in range(k)
            if abs(probs[s] - phi.bound.threshold) > 1e-6
        }
        assert ours & stable == classical & stable


class TestStructuralProperties:
    @given(random_homogeneous_setups(), intervals)
    @settings(max_examples=20, deadline=None)
    def test_probabilities_in_unit_interval(self, local, interval):
        model = MeanFieldModel(local)
        k = local.num_states
        ctx = EvaluationContext(model, np.full(k, 1.0 / k))
        probs = LocalChecker(ctx).path_probabilities(
            Until(interval, Atomic("work"), Atomic("goal"))
        )
        assert np.all(probs >= -1e-12)
        assert np.all(probs <= 1.0 + 1e-12)

    @given(random_homogeneous_setups())
    @settings(max_examples=20, deadline=None)
    def test_until_monotone_in_horizon(self, local):
        model = MeanFieldModel(local)
        k = local.num_states
        ctx = EvaluationContext(model, np.full(k, 1.0 / k))
        checker = LocalChecker(ctx)
        short = checker.path_probabilities(
            Until(TimeInterval(0.0, 0.5), Atomic("work"), Atomic("goal"))
        )
        long = checker.path_probabilities(
            Until(TimeInterval(0.0, 2.0), Atomic("work"), Atomic("goal"))
        )
        assert np.all(long >= short - 1e-8)

    @given(random_homogeneous_setups())
    @settings(max_examples=15, deadline=None)
    def test_negation_partitions_states(self, local):
        model = MeanFieldModel(local)
        k = local.num_states
        ctx = EvaluationContext(model, np.full(k, 1.0 / k))
        checker = LocalChecker(ctx)
        phi = Probability(
            Bound(">", 0.5),
            Until(TimeInterval(0.0, 1.0), Atomic("work"), Atomic("goal")),
        )
        sat = checker.sat_at(phi)
        neg = checker.sat_at(Not(phi))
        assert sat | neg == frozenset(range(k))
        assert sat & neg == frozenset()
