"""Fault-injection harness for the numerical robustness layer.

These tests wrap drift / generator callables so they raise a
floating-point error or return NaN at chosen call counts, then assert
that each layer of the pipeline *degrades gracefully* (stiff-method
fallback, recorded in the :class:`~repro.diagnostics.DiagnosticTrace`)
or *fails loudly* (:class:`~repro.exceptions.NumericalError` carrying
the attempt history) — never silently corrupting a verdict.

Raise-mode faults are deterministic: scipy does not catch exceptions
from a right-hand side, so one raising call aborts exactly one
``solve_ivp`` attempt.  NaN-mode faults model a rate function going
non-finite for good (e.g. a division blow-up in a user model).
"""

import numpy as np
import pytest

from repro.checking.context import EvaluationContext
from repro.checking.statistical import StatisticalChecker
from repro.ctmc.inhomogeneous import solve_forward_kolmogorov
from repro.diagnostics import (
    DiagnosticTrace,
    check_transient_residual,
    robust_solve_ivp,
)
from repro.exceptions import NumericalError
from repro.instrumentation import EvalStats
from repro.logic.parser import parse_path
from repro.meanfield.ode import OccupancyTrajectory
from repro.models.virus import SETTING_1, overall_ode_matrix


class FaultInjector:
    """Wrap a callable to misbehave at chosen call counts.

    Parameters
    ----------
    fn:
        The wrapped drift ``f(t, m)`` or generator ``q(t)``.
    mode:
        ``"raise"`` — raise :class:`FloatingPointError` (an
        ``ArithmeticError``, as ``np.errstate(all="raise")`` would);
        ``"nan"`` — return the result with every entry set to NaN.
    window:
        Call indices (1-based) at which to misbehave; ``None`` means
        every call.
    """

    def __init__(self, fn, mode="raise", window=None):
        self.fn = fn
        self.mode = mode
        self.window = window
        self.calls = 0

    def _faulty(self) -> bool:
        return self.window is None or self.calls in self.window

    def __call__(self, *args):
        self.calls += 1
        if self._faulty():
            if self.mode == "raise":
                raise FloatingPointError(
                    f"injected fault at call {self.calls}"
                )
            return np.full_like(
                np.asarray(self.fn(*args), dtype=float), np.nan
            )
        return self.fn(*args)


@pytest.fixture
def virus_drift():
    """The Setting-1 virus overall ODE (linear, so easy to cross-check)."""
    a = overall_ode_matrix(SETTING_1)
    return lambda t, m: m @ a


M0 = np.array([0.8, 0.15, 0.05])


class TestOccupancyFallback:
    def test_rk45_failure_retried_on_radau(self, virus_drift):
        """One injected fault kills the RK45 attempt; Radau recovers."""
        clean = OccupancyTrajectory(virus_drift, M0, horizon=2.0)
        trace = DiagnosticTrace()
        injector = FaultInjector(virus_drift, mode="raise", window={3})
        traj = OccupancyTrajectory(injector, M0, horizon=2.0, trace=trace)

        assert trace.num_fallbacks == 1
        record = trace.solves[0]
        assert [a.method for a in record.attempts] == ["RK45", "Radau"]
        assert not record.attempts[0].success
        assert "injected fault" in record.attempts[0].message
        assert record.attempts[1].success
        # Fallback atol is tightened, never loosened.
        assert record.attempts[1].atol < record.attempts[0].atol
        # The degraded solve still gives the right answer.
        assert np.allclose(traj(1.5), clean(1.5), atol=1e-7)
        # The fallback chain is visible in the --diagnose rendering.
        text = trace.format()
        assert "RK45 FAILED" in text
        assert "Radau ok" in text
        assert "[fallback]" in text

    def test_all_methods_fail_raises_with_history(self, virus_drift):
        """A persistent fault exhausts the chain -> NumericalError."""
        trace = DiagnosticTrace()
        injector = FaultInjector(virus_drift, mode="raise", window=None)
        with pytest.raises(NumericalError) as err:
            OccupancyTrajectory(injector, M0, horizon=2.0, trace=trace)
        message = str(err.value)
        assert "occupancy ODE solve failed" in message
        for method in ("RK45", "Radau", "LSODA"):
            assert method in message
        # The failed chain is still recorded for post-mortem diagnosis.
        assert len(trace.solves) == 1
        assert not trace.solves[0].success
        assert len(trace.solves[0].attempts) == 3

    def test_nan_drift_fails_loudly(self, virus_drift):
        """A drift gone NaN-for-good never yields a silent NaN answer."""
        injector = FaultInjector(virus_drift, mode="nan", window=None)
        with pytest.raises(NumericalError):
            OccupancyTrajectory(injector, M0, horizon=2.0)

    def test_empty_fallbacks_restores_die_on_first_failure(self, virus_drift):
        """``fallbacks=()`` disables degradation: one attempt, then raise."""
        trace = DiagnosticTrace()
        injector = FaultInjector(virus_drift, mode="raise", window={3})
        with pytest.raises(NumericalError) as err:
            OccupancyTrajectory(
                injector, M0, horizon=2.0, fallbacks=(), trace=trace
            )
        assert "after 1 attempts" in str(err.value)
        assert "[0.0, 2.0]" in str(err.value)
        assert len(trace.solves[0].attempts) == 1

    def test_stats_counters_fed_through_trace(self, virus_drift):
        stats = EvalStats()
        trace = DiagnosticTrace(stats=stats)
        injector = FaultInjector(virus_drift, mode="raise", window={3})
        OccupancyTrajectory(injector, M0, horizon=2.0, trace=trace)
        assert stats.solver_fallbacks == 1
        assert stats.residual_checks >= 1
        assert stats.residual_warnings == 0


class TestKolmogorovFallback:
    def test_forward_solve_falls_back(self, virus1, m_example1):
        """An injected fault in Q(t) degrades the Equation (5) solve."""
        ctx = EvaluationContext(virus1, m_example1)
        q_of_t = ctx.generator_function()
        clean = solve_forward_kolmogorov(q_of_t, 0.0, 1.0)

        trace = DiagnosticTrace()
        # Call 1 probes Q(t_start) outside the solve; fault call 3 so the
        # failure lands inside the RK45 attempt.
        injector = FaultInjector(q_of_t, mode="raise", window={3})
        pi = solve_forward_kolmogorov(injector, 0.0, 1.0, trace=trace)

        assert trace.num_fallbacks == 1
        assert trace.solves[0].attempts[0].method == "RK45"
        assert not trace.solves[0].attempts[0].success
        assert trace.solves[0].success
        assert np.allclose(pi, clean, atol=1e-7)

    def test_context_transient_matrix_falls_back(self, virus1, m_example1):
        """The context-level cache path reports fallbacks in ctx.trace."""
        ctx_clean = EvaluationContext(virus1, m_example1)
        absorbing = frozenset({2})
        signature = ("absorbing", absorbing)
        from repro.checking.transform import absorbing_generator_function

        q_clean = absorbing_generator_function(
            ctx_clean.generator_function(), absorbing
        )
        pi_clean = ctx_clean.transient_matrix(signature, q_clean, 0.0, 1.0)

        ctx = EvaluationContext(virus1, m_example1)
        q_faulty = FaultInjector(
            absorbing_generator_function(ctx.generator_function(), absorbing),
            mode="raise",
            window={3},
        )
        pi = ctx.transient_matrix(signature, q_faulty, 0.0, 1.0)

        assert ctx.trace.num_fallbacks >= 1
        assert ctx.stats.solver_fallbacks >= 1
        assert np.allclose(pi, pi_clean, atol=1e-7)
        # The monotone reachability-CDF residual check ran and passed.
        assert ctx.stats.residual_checks >= 1
        assert ctx.stats.residual_warnings == 0


class TestResidualChecks:
    def test_bad_matrix_recorded_as_warning(self):
        stats = EvalStats()
        trace = DiagnosticTrace(stats=stats)
        bad = np.array([[0.7, 0.2], [0.5, 0.5]])  # first row sums to 0.9
        record = check_transient_residual(bad, label="bad", trace=trace)
        assert not record.ok
        assert record.row_sum_error == pytest.approx(0.1)
        assert trace.warnings and "bad" in trace.warnings[0]
        assert stats.residual_warnings == 1
        assert "WARNING" in trace.format()

    def test_monotone_violation_detected(self):
        trace = DiagnosticTrace()
        pi = np.eye(2)
        # Absorbed mass decreasing between solver steps: 0.4 -> 0.3.
        steps = np.array([[0.2, 0.4], [0.25, 0.3]])
        record = check_transient_residual(
            pi, label="cdf", monotone_trajectory=steps, trace=trace
        )
        assert not record.ok
        assert record.monotone_violation == pytest.approx(0.1)
        assert trace.residual_maxima()["monotone"] == pytest.approx(0.1)


class TestRobustSolveDirect:
    def test_primary_success_records_single_attempt(self):
        trace = DiagnosticTrace()
        sol = robust_solve_ivp(
            lambda t, y: -y,
            (0.0, 1.0),
            np.array([1.0]),
            rtol=1e-8,
            atol=1e-10,
            trace=trace,
        )
        assert sol.success
        assert trace.num_fallbacks == 0
        assert len(trace.solves[0].attempts) == 1

    def test_non_finite_solution_triggers_fallback(self, monkeypatch):
        """A "successful" solve with NaN output is treated as a failure.

        scipy's adaptive error control usually rejects NaN steps, so the
        non-finite branch is exercised directly: the primary attempt is
        made to report success while carrying NaN values, and only the
        fallback attempt delegates to the real solver.
        """
        import repro.diagnostics as diag

        real_solve_ivp = diag.solve_ivp
        seen = []

        def poisoned(rhs, t_span, y0, method, **kw):
            seen.append(method)
            sol = real_solve_ivp(rhs, t_span, y0, method=method, **kw)
            if method == "RK45":
                sol.y = np.full_like(sol.y, np.nan)
            return sol

        monkeypatch.setattr(diag, "solve_ivp", poisoned)
        trace = DiagnosticTrace()
        sol = robust_solve_ivp(
            lambda t, y: -y,
            (0.0, 1.0),
            np.array([1.0]),
            rtol=1e-8,
            atol=1e-10,
            trace=trace,
            label="poisoned",
        )
        assert seen == ["RK45", "Radau"]
        assert np.all(np.isfinite(sol.y))
        attempts = trace.solves[0].attempts
        assert attempts[0].message == "solution contains non-finite values"
        assert attempts[1].success


class TestStatisticalRateBound:
    def test_nan_rate_bound_fails_loudly(self, virus1, m_example1):
        """A NaN thinning bound must not silently corrupt the estimate."""
        ctx = EvaluationContext(virus1, m_example1)
        checker = StatisticalChecker(ctx, samples=50, seed=0)
        formula = parse_path("not_infected U[0,1] infected")
        with pytest.raises(NumericalError) as err:
            checker.path_probability(formula, "s1", rate_bound=float("nan"))
        assert "rate bound" in str(err.value)
        assert any("invalid thinning rate bound" in n for n in ctx.trace.notes)

    def test_nan_generator_rate_bound_fails_loudly(self, virus1, m_example1):
        """NaN rates poison the probed bound -> loud NumericalError."""
        ctx = EvaluationContext(virus1, m_example1)
        # Replace the memoized generator with a NaN-returning twin before
        # the checker probes it for the thinning bound.
        ctx._generator_fn = FaultInjector(
            ctx.generator_function(), mode="nan", window=None
        )
        checker = StatisticalChecker(ctx, samples=50, seed=0, method="serial")
        formula = parse_path("not_infected U[0,1] infected")
        with pytest.raises(NumericalError):
            checker.path_probability(formula, "s1")
