"""Fault-injection harness for the numerical robustness layer.

These tests wrap drift / generator callables so they raise a
floating-point error or return NaN at chosen call counts, then assert
that each layer of the pipeline *degrades gracefully* (stiff-method
fallback, recorded in the :class:`~repro.diagnostics.DiagnosticTrace`)
or *fails loudly* (:class:`~repro.exceptions.NumericalError` carrying
the attempt history) — never silently corrupting a verdict.

Raise-mode faults are deterministic: scipy does not catch exceptions
from a right-hand side, so one raising call aborts exactly one
``solve_ivp`` attempt.  NaN-mode faults model a rate function going
non-finite for good (e.g. a division blow-up in a user model).
"""

import numpy as np
import pytest

from repro.checking.context import EvaluationContext
from repro.checking.global_ import MFModelChecker
from repro.checking.statistical import StatisticalChecker
from repro.checking.transform import absorbing_generator_function
from repro.ctmc.inhomogeneous import solve_forward_kolmogorov
from repro.diagnostics import (
    DiagnosticTrace,
    check_transient_residual,
    robust_solve_ivp,
)
from repro.exceptions import (
    BudgetExceededError,
    FormulaError,
    NumericalError,
)
from repro.instrumentation import EvalStats
from repro.logic.parser import parse_path
from repro.meanfield.ode import OccupancyTrajectory
from repro.models.virus import SETTING_1, overall_ode_matrix
from repro.resilience import Budget, ResultQuality


class FaultInjector:
    """Wrap a callable to misbehave at chosen call counts.

    Parameters
    ----------
    fn:
        The wrapped drift ``f(t, m)`` or generator ``q(t)``.
    mode:
        ``"raise"`` — raise :class:`FloatingPointError` (an
        ``ArithmeticError``, as ``np.errstate(all="raise")`` would);
        ``"nan"`` — return the result with every entry set to NaN.
    window:
        Call indices (1-based) at which to misbehave; ``None`` means
        every call.
    """

    def __init__(self, fn, mode="raise", window=None):
        self.fn = fn
        self.mode = mode
        self.window = window
        self.calls = 0

    def _faulty(self) -> bool:
        return self.window is None or self.calls in self.window

    def __call__(self, *args):
        self.calls += 1
        if self._faulty():
            if self.mode == "raise":
                raise FloatingPointError(
                    f"injected fault at call {self.calls}"
                )
            return np.full_like(
                np.asarray(self.fn(*args), dtype=float), np.nan
            )
        return self.fn(*args)


@pytest.fixture
def virus_drift():
    """The Setting-1 virus overall ODE (linear, so easy to cross-check)."""
    a = overall_ode_matrix(SETTING_1)
    return lambda t, m: m @ a


M0 = np.array([0.8, 0.15, 0.05])


class TestOccupancyFallback:
    def test_rk45_failure_retried_on_radau(self, virus_drift):
        """One injected fault kills the RK45 attempt; Radau recovers."""
        clean = OccupancyTrajectory(virus_drift, M0, horizon=2.0)
        trace = DiagnosticTrace()
        injector = FaultInjector(virus_drift, mode="raise", window={3})
        traj = OccupancyTrajectory(injector, M0, horizon=2.0, trace=trace)

        assert trace.num_fallbacks == 1
        record = trace.solves[0]
        assert [a.method for a in record.attempts] == ["RK45", "Radau"]
        assert not record.attempts[0].success
        assert "injected fault" in record.attempts[0].message
        assert record.attempts[1].success
        # Fallback atol is tightened, never loosened.
        assert record.attempts[1].atol < record.attempts[0].atol
        # The degraded solve still gives the right answer.
        assert np.allclose(traj(1.5), clean(1.5), atol=1e-7)
        # The fallback chain is visible in the --diagnose rendering.
        text = trace.format()
        assert "RK45 FAILED" in text
        assert "Radau ok" in text
        assert "[fallback]" in text

    def test_all_methods_fail_raises_with_history(self, virus_drift):
        """A persistent fault exhausts the chain -> NumericalError."""
        trace = DiagnosticTrace()
        injector = FaultInjector(virus_drift, mode="raise", window=None)
        with pytest.raises(NumericalError) as err:
            OccupancyTrajectory(injector, M0, horizon=2.0, trace=trace)
        message = str(err.value)
        assert "occupancy ODE solve failed" in message
        for method in ("RK45", "Radau", "LSODA"):
            assert method in message
        # The failed chain is still recorded for post-mortem diagnosis.
        assert len(trace.solves) == 1
        assert not trace.solves[0].success
        assert len(trace.solves[0].attempts) == 3

    def test_nan_drift_fails_loudly(self, virus_drift):
        """A drift gone NaN-for-good never yields a silent NaN answer."""
        injector = FaultInjector(virus_drift, mode="nan", window=None)
        with pytest.raises(NumericalError):
            OccupancyTrajectory(injector, M0, horizon=2.0)

    def test_empty_fallbacks_restores_die_on_first_failure(self, virus_drift):
        """``fallbacks=()`` disables degradation: one attempt, then raise."""
        trace = DiagnosticTrace()
        injector = FaultInjector(virus_drift, mode="raise", window={3})
        with pytest.raises(NumericalError) as err:
            OccupancyTrajectory(
                injector, M0, horizon=2.0, fallbacks=(), trace=trace
            )
        assert "after 1 attempts" in str(err.value)
        assert "[0.0, 2.0]" in str(err.value)
        assert len(trace.solves[0].attempts) == 1

    def test_stats_counters_fed_through_trace(self, virus_drift):
        stats = EvalStats()
        trace = DiagnosticTrace(stats=stats)
        injector = FaultInjector(virus_drift, mode="raise", window={3})
        OccupancyTrajectory(injector, M0, horizon=2.0, trace=trace)
        assert stats.solver_fallbacks == 1
        assert stats.residual_checks >= 1
        assert stats.residual_warnings == 0


class TestKolmogorovFallback:
    def test_forward_solve_falls_back(self, virus1, m_example1):
        """An injected fault in Q(t) degrades the Equation (5) solve."""
        ctx = EvaluationContext(virus1, m_example1)
        q_of_t = ctx.generator_function()
        clean = solve_forward_kolmogorov(q_of_t, 0.0, 1.0)

        trace = DiagnosticTrace()
        # Call 1 probes Q(t_start) outside the solve; fault call 3 so the
        # failure lands inside the RK45 attempt.
        injector = FaultInjector(q_of_t, mode="raise", window={3})
        pi = solve_forward_kolmogorov(injector, 0.0, 1.0, trace=trace)

        assert trace.num_fallbacks == 1
        assert trace.solves[0].attempts[0].method == "RK45"
        assert not trace.solves[0].attempts[0].success
        assert trace.solves[0].success
        assert np.allclose(pi, clean, atol=1e-7)

    def test_context_transient_matrix_falls_back(self, virus1, m_example1):
        """The context-level cache path reports fallbacks in ctx.trace."""
        ctx_clean = EvaluationContext(virus1, m_example1)
        absorbing = frozenset({2})
        signature = ("absorbing", absorbing)
        from repro.checking.transform import absorbing_generator_function

        q_clean = absorbing_generator_function(
            ctx_clean.generator_function(), absorbing
        )
        pi_clean = ctx_clean.transient_matrix(signature, q_clean, 0.0, 1.0)

        ctx = EvaluationContext(virus1, m_example1)
        q_faulty = FaultInjector(
            absorbing_generator_function(ctx.generator_function(), absorbing),
            mode="raise",
            window={3},
        )
        pi = ctx.transient_matrix(signature, q_faulty, 0.0, 1.0)

        assert ctx.trace.num_fallbacks >= 1
        assert ctx.stats.solver_fallbacks >= 1
        assert np.allclose(pi, pi_clean, atol=1e-7)
        # The monotone reachability-CDF residual check ran and passed.
        assert ctx.stats.residual_checks >= 1
        assert ctx.stats.residual_warnings == 0


class TestResidualChecks:
    def test_bad_matrix_recorded_as_warning(self):
        stats = EvalStats()
        trace = DiagnosticTrace(stats=stats)
        bad = np.array([[0.7, 0.2], [0.5, 0.5]])  # first row sums to 0.9
        record = check_transient_residual(bad, label="bad", trace=trace)
        assert not record.ok
        assert record.row_sum_error == pytest.approx(0.1)
        assert trace.warnings and "bad" in trace.warnings[0]
        assert stats.residual_warnings == 1
        assert "WARNING" in trace.format()

    def test_monotone_violation_detected(self):
        trace = DiagnosticTrace()
        pi = np.eye(2)
        # Absorbed mass decreasing between solver steps: 0.4 -> 0.3.
        steps = np.array([[0.2, 0.4], [0.25, 0.3]])
        record = check_transient_residual(
            pi, label="cdf", monotone_trajectory=steps, trace=trace
        )
        assert not record.ok
        assert record.monotone_violation == pytest.approx(0.1)
        assert trace.residual_maxima()["monotone"] == pytest.approx(0.1)


class TestRobustSolveDirect:
    def test_primary_success_records_single_attempt(self):
        trace = DiagnosticTrace()
        sol = robust_solve_ivp(
            lambda t, y: -y,
            (0.0, 1.0),
            np.array([1.0]),
            rtol=1e-8,
            atol=1e-10,
            trace=trace,
        )
        assert sol.success
        assert trace.num_fallbacks == 0
        assert len(trace.solves[0].attempts) == 1

    def test_non_finite_solution_triggers_fallback(self, monkeypatch):
        """A "successful" solve with NaN output is treated as a failure.

        scipy's adaptive error control usually rejects NaN steps, so the
        non-finite branch is exercised directly: the primary attempt is
        made to report success while carrying NaN values, and only the
        fallback attempt delegates to the real solver.
        """
        import repro.diagnostics as diag

        real_solve_ivp = diag.solve_ivp
        seen = []

        def poisoned(rhs, t_span, y0, method, **kw):
            seen.append(method)
            sol = real_solve_ivp(rhs, t_span, y0, method=method, **kw)
            if method == "RK45":
                sol.y = np.full_like(sol.y, np.nan)
            return sol

        monkeypatch.setattr(diag, "solve_ivp", poisoned)
        trace = DiagnosticTrace()
        sol = robust_solve_ivp(
            lambda t, y: -y,
            (0.0, 1.0),
            np.array([1.0]),
            rtol=1e-8,
            atol=1e-10,
            trace=trace,
            label="poisoned",
        )
        assert seen == ["RK45", "Radau"]
        assert np.all(np.isfinite(sol.y))
        attempts = trace.solves[0].attempts
        assert attempts[0].message == "solution contains non-finite values"
        assert attempts[1].success


class FakeClock:
    """Deterministic monotonic clock, advanced from inside a generator."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += float(dt)


class ClockAdvancer:
    """Wrap ``q(t)`` so it jumps a fake clock past a deadline at call N.

    With ``then_raise`` the expired call also raises, so solver attempts
    short enough to finish between budget checkpoints still fail and the
    next checkpoint (the following attempt's ``charge_solve``) fires.
    """

    def __init__(self, fn, clock, after_calls, dt=1e6, then_raise=False):
        self.fn = fn
        self.clock = clock
        self.after_calls = after_calls
        self.dt = dt
        self.then_raise = then_raise
        self.calls = 0

    def __call__(self, t):
        self.calls += 1
        if self.calls >= self.after_calls:
            self.clock.advance(self.dt)
            if self.then_raise:
                raise FloatingPointError("injected fault past the deadline")
        return self.fn(t)


def _fail_ode_rung(monkeypatch, reason="injected: ode rung down"):
    """Make the ODE rung fail for real windows (zero windows stay exact)."""
    real = EvaluationContext._transient_ode

    def failing(self, signature, q_of_t, t_start, duration, rtol, atol):
        if duration > 0.0:
            raise NumericalError(reason)
        return real(self, signature, q_of_t, t_start, duration, rtol, atol)

    monkeypatch.setattr(EvaluationContext, "_transient_ode", failing)


def _fail_uniformization_rung(monkeypatch):
    def failing(self, q_of_t, t_start, duration):
        raise NumericalError("injected: uniformization rung down")

    monkeypatch.setattr(
        EvaluationContext, "_transient_uniformization", failing
    )


ABSORBING = frozenset({2})
SIGNATURE = ("absorbing", ABSORBING)


def _absorbing_q(ctx):
    return absorbing_generator_function(ctx.generator_function(), ABSORBING)


class TestDegradationLadder:
    """Budget pressure / persistent faults walk the rungs, never corrupt."""

    def _clean_pi(self, virus1, m_example1):
        ctx = EvaluationContext(virus1, m_example1)
        return ctx.transient_matrix(SIGNATURE, _absorbing_q(ctx), 0.0, 1.0)

    def test_ode_failure_lands_on_uniformization(
        self, virus1, m_example1, monkeypatch
    ):
        pi_clean = self._clean_pi(virus1, m_example1)
        _fail_ode_rung(monkeypatch)
        ctx = EvaluationContext(virus1, m_example1)
        pi = ctx.transient_matrix(SIGNATURE, _absorbing_q(ctx), 0.0, 1.0)

        assert ctx.trace.quality is ResultQuality.DEGRADED
        assert ctx.stats.ladder_downgrades == 1
        record = ctx.trace.downgrades[0]
        assert (record.from_rung, record.to_rung) == ("ode", "uniformization")
        assert "injected" in record.reason
        assert record.uncertainty > 0.0
        # The substituted answer is still accurate (order-2 product).
        assert np.allclose(pi, pi_clean, atol=1e-3)
        assert np.max(np.abs(pi - pi_clean)) < 10 * record.uncertainty + 1e-6

    def test_two_failures_land_on_monte_carlo(
        self, virus1, m_example1, monkeypatch
    ):
        pi_clean = self._clean_pi(virus1, m_example1)
        _fail_ode_rung(monkeypatch)
        _fail_uniformization_rung(monkeypatch)
        ctx = EvaluationContext(virus1, m_example1)
        pi = ctx.transient_matrix(SIGNATURE, _absorbing_q(ctx), 0.0, 1.0)

        assert ctx.trace.quality is ResultQuality.STATISTICAL
        assert len(ctx.trace.downgrades) == 2
        last = ctx.trace.downgrades[-1]
        assert (last.from_rung, last.to_rung) == ("uniformization", "mc")
        assert last.uncertainty > 0.0
        assert any("Monte-Carlo" in note for note in ctx.trace.notes)
        # Rows are still distributions and close to the exact answer at
        # sampling accuracy (200 paths/state).
        assert np.allclose(pi.sum(axis=1), 1.0, atol=1e-12)
        assert np.allclose(pi, pi_clean, atol=0.12)

    def test_monte_carlo_rung_is_reproducible(
        self, virus1, m_example1, monkeypatch
    ):
        _fail_ode_rung(monkeypatch)
        _fail_uniformization_rung(monkeypatch)
        runs = []
        for _ in range(2):
            ctx = EvaluationContext(virus1, m_example1)
            runs.append(
                ctx.transient_matrix(SIGNATURE, _absorbing_q(ctx), 0.0, 1.0)
            )
        assert np.array_equal(runs[0], runs[1])

    def test_every_rung_failing_raises_with_history(
        self, virus1, m_example1, monkeypatch
    ):
        """A generator gone NaN-for-good defeats all rungs -> loud error."""
        ctx = EvaluationContext(virus1, m_example1)
        q_nan = FaultInjector(_absorbing_q(ctx), mode="nan", window=None)
        with pytest.raises(NumericalError) as err:
            ctx.transient_matrix(SIGNATURE, q_nan, 0.0, 1.0)
        message = str(err.value)
        assert "every degradation-ladder rung failed" in message
        for rung in ("ode:", "uniformization:", "mc:"):
            assert rung in message
        # Two descents were recorded before the ladder ran out.
        assert len(ctx.trace.downgrades) == 2

    def test_pressure_skips_the_propagator_rung(self, virus1, m_example1):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock)
        clock.advance(9.5)  # inside the pressure window, not expired
        ctx = EvaluationContext(virus1, m_example1, budget=budget)
        pi = ctx.transient_matrix(
            SIGNATURE, _absorbing_q(ctx), 0.0, 1.0, method="propagator"
        )
        assert any("skipping propagator rung" in n for n in ctx.trace.notes)
        # The one-shot ODE solve served the window instead, exactly.
        assert ctx.trace.quality is ResultQuality.EXACT
        assert np.allclose(pi.sum(axis=1), 1.0, atol=1e-9)


class TestDeadlineAtEachRung:
    """A deadline hit inside any rung surfaces promptly with progress."""

    def _expect_budget_error(self, ctx, q):
        with pytest.raises(BudgetExceededError) as err:
            ctx.transient_matrix(SIGNATURE, q, 0.0, 1.0)
        assert "execution budget exceeded" in str(err.value)
        assert "elapsed_seconds" in err.value.progress
        return err.value

    def test_deadline_during_ode_rung(self, virus1, m_example1):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock)
        ctx = EvaluationContext(virus1, m_example1, budget=budget)
        # The RK45 attempt both expires the clock and fails; the next
        # attempt's charge_solve surfaces BudgetExceededError instead of
        # the ladder descending further on stale time.
        q = ClockAdvancer(
            _absorbing_q(ctx), clock, after_calls=2, then_raise=True
        )
        self._expect_budget_error(ctx, q)

    def test_deadline_during_uniformization_rung(
        self, virus1, m_example1, monkeypatch
    ):
        _fail_ode_rung(monkeypatch)
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock)
        ctx = EvaluationContext(virus1, m_example1, budget=budget)
        q = ClockAdvancer(_absorbing_q(ctx), clock, after_calls=5)
        error = self._expect_budget_error(ctx, q)
        assert "uniformization" in str(error)

    def test_deadline_during_monte_carlo_rung(
        self, virus1, m_example1, monkeypatch
    ):
        _fail_ode_rung(monkeypatch)
        _fail_uniformization_rung(monkeypatch)
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock)
        ctx = EvaluationContext(virus1, m_example1, budget=budget)
        q = ClockAdvancer(_absorbing_q(ctx), clock, after_calls=8)
        error = self._expect_budget_error(ctx, q)
        assert "Monte-Carlo" in str(error)

    def test_solver_cap_enforced(self, virus1, m_example1):
        budget = Budget(max_solves=1, clock=FakeClock())
        ctx = EvaluationContext(virus1, m_example1, budget=budget)
        q = _absorbing_q(ctx)
        with pytest.raises(BudgetExceededError, match="cap 1 reached"):
            # Distinct windows so the transient cache cannot serve them.
            ctx.transient_matrix(SIGNATURE, q, 0.0, 1.0)
            ctx.transient_matrix(SIGNATURE, q, 0.0, 2.0)


class TestThreeValuedVerdicts:
    """Near-threshold degraded results report indeterminate, never flip."""

    FORMULA = "EP[<0.3](not_infected U[0,1] infected)"

    def test_degraded_far_from_threshold_stays_definite(
        self, virus1, m_example1, monkeypatch
    ):
        _fail_ode_rung(monkeypatch)
        _fail_uniformization_rung(monkeypatch)
        checker = MFModelChecker(virus1)
        verdict = checker.check_detailed(self.FORMULA, m_example1)
        # The exact value (~0.22) sits well below 0.3: the statistical
        # error bar cannot bridge the margin, so the verdict stays
        # definite even though every window came from the MC rung.
        assert verdict.holds is True
        assert not verdict.indeterminate
        assert verdict.quality is ResultQuality.STATISTICAL
        assert verdict.margin > 0.05
        assert bool(verdict) is True

    def test_near_threshold_degraded_is_indeterminate(
        self, virus1, m_example1
    ):
        checker = MFModelChecker(virus1)
        ctx = checker.context(m_example1)
        # Simulate a statistical window whose error bar covers the
        # distance between the leaf value (0.2 infected mass at t=0)
        # and the threshold 0.25.
        ctx.trace.downgrade(
            "ode", "mc", ResultQuality.STATISTICAL,
            "injected", uncertainty=0.1,
        )
        verdict = checker.check_detailed(
            "E[>0.25](infected)", m_example1, ctx=ctx
        )
        assert verdict.indeterminate
        assert verdict.holds is None
        assert verdict.quality is ResultQuality.STATISTICAL
        assert verdict.value == pytest.approx(0.2)
        assert verdict.margin == pytest.approx(0.05)
        assert any("indeterminate leaf" in n for n in ctx.trace.notes)
        with pytest.raises(FormulaError, match="indeterminate"):
            bool(verdict)

    def test_same_value_exact_run_is_definite(self, virus1, m_example1):
        checker = MFModelChecker(virus1)
        verdict = checker.check_detailed("E[>0.25](infected)", m_example1)
        assert verdict.holds is False
        assert verdict.quality is ResultQuality.EXACT

    def test_kleene_false_dominates_unknown(self, virus1, m_example1):
        checker = MFModelChecker(virus1)
        ctx = checker.context(m_example1)
        ctx.trace.downgrade(
            "ode", "mc", ResultQuality.STATISTICAL,
            "injected", uncertainty=0.1,
        )
        # Left: definitely false (0.2 > 0.9 fails by a wide margin).
        # Right: indeterminate.  false AND unknown == false.
        verdict = checker.check_detailed(
            "E[>0.9](infected) & E[>0.25](infected)", m_example1, ctx=ctx
        )
        assert verdict.holds is False
        # ... but true AND unknown stays unknown (0.05 is far enough
        # below the 0.2 value to survive the 0.1 error bar).
        verdict = checker.check_detailed(
            "E[>0.05](infected) & E[>0.25](infected)", m_example1, ctx=ctx
        )
        assert verdict.holds is None
        # ... and true OR unknown is true.
        verdict = checker.check_detailed(
            "E[>0.05](infected) | E[>0.25](infected)", m_example1, ctx=ctx
        )
        assert verdict.holds is True


class TestStatisticalRateBound:
    def test_nan_rate_bound_fails_loudly(self, virus1, m_example1):
        """A NaN thinning bound must not silently corrupt the estimate."""
        ctx = EvaluationContext(virus1, m_example1)
        checker = StatisticalChecker(ctx, samples=50, seed=0)
        formula = parse_path("not_infected U[0,1] infected")
        with pytest.raises(NumericalError) as err:
            checker.path_probability(formula, "s1", rate_bound=float("nan"))
        assert "rate bound" in str(err.value)
        assert any("invalid thinning rate bound" in n for n in ctx.trace.notes)

    def test_nan_generator_rate_bound_fails_loudly(self, virus1, m_example1):
        """NaN rates poison the probed bound -> loud NumericalError."""
        ctx = EvaluationContext(virus1, m_example1)
        # Replace the memoized generator with a NaN-returning twin before
        # the checker probes it for the thinning bound.
        ctx._generator_fn = FaultInjector(
            ctx.generator_function(), mode="nan", window=None
        )
        checker = StatisticalChecker(ctx, samples=50, seed=0, method="serial")
        formula = parse_path("not_infected U[0,1] infected")
        with pytest.raises(NumericalError):
            checker.path_probability(formula, "s1")
