"""Property-based tests (hypothesis) for the CTMC substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ctmc.generator import (
    build_generator,
    embedded_jump_matrix,
    is_generator,
    uniformization_rate,
    uniformized_matrix,
)
from repro.ctmc.transient import (
    transient_matrix_expm,
    transient_matrix_uniformization,
)

#: Strategy: a sparse dict of off-diagonal rates for a K-state chain.
def rate_dicts(max_states: int = 5):
    return st.integers(2, max_states).flatmap(
        lambda k: st.dictionaries(
            st.tuples(st.integers(0, k - 1), st.integers(0, k - 1)).filter(
                lambda ij: ij[0] != ij[1]
            ),
            st.floats(0.0, 10.0, allow_nan=False),
            max_size=k * (k - 1),
        ).map(lambda rates: (k, rates))
    )


class TestGeneratorProperties:
    @given(rate_dicts())
    @settings(max_examples=60, deadline=None)
    def test_build_generator_always_valid(self, spec):
        k, rates = spec
        q = build_generator(k, rates)
        assert is_generator(q)

    @given(rate_dicts())
    @settings(max_examples=40, deadline=None)
    def test_uniformized_matrix_is_stochastic(self, spec):
        k, rates = spec
        q = build_generator(k, rates)
        p = uniformized_matrix(q)
        assert np.all(p >= -1e-12)
        assert np.allclose(p.sum(axis=1), 1.0)

    @given(rate_dicts())
    @settings(max_examples=40, deadline=None)
    def test_embedded_chain_is_stochastic(self, spec):
        k, rates = spec
        q = build_generator(k, rates)
        p = embedded_jump_matrix(q)
        assert np.all(p >= -1e-12)
        assert np.allclose(p.sum(axis=1), 1.0)

    @given(rate_dicts())
    @settings(max_examples=30, deadline=None)
    def test_uniformization_rate_covers_exits(self, spec):
        k, rates = spec
        q = build_generator(k, rates)
        lam = uniformization_rate(q)
        assert lam >= np.max(-np.diag(q)) - 1e-12
        assert lam > 0


class TestTransientProperties:
    @given(rate_dicts(max_states=4), st.floats(0.0, 5.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_transient_rows_are_distributions(self, spec, t):
        k, rates = spec
        q = build_generator(k, rates)
        pi = transient_matrix_expm(q, t)
        assert np.all(pi >= -1e-9)
        assert np.allclose(pi.sum(axis=1), 1.0, atol=1e-9)

    @given(rate_dicts(max_states=4), st.floats(0.01, 3.0, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_expm_and_uniformization_agree(self, spec, t):
        k, rates = spec
        q = build_generator(k, rates)
        a = transient_matrix_expm(q, t)
        b = transient_matrix_uniformization(q, t, epsilon=1e-12)
        assert np.allclose(a, b, atol=1e-8)

    @given(rate_dicts(max_states=4), st.floats(0.01, 2.0), st.floats(0.01, 2.0))
    @settings(max_examples=20, deadline=None)
    def test_semigroup(self, spec, t1, t2):
        k, rates = spec
        q = build_generator(k, rates)
        lhs = transient_matrix_expm(q, t1) @ transient_matrix_expm(q, t2)
        rhs = transient_matrix_expm(q, t1 + t2)
        assert np.allclose(lhs, rhs, atol=1e-8)
