"""Property-based tests for the IntervalSet boolean algebra.

cSat correctness hinges on these laws (Section V-B uses them verbatim to
combine leaf sets), so they are exercised with randomized interval
families rather than hand-picked cases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking.intervals import IntervalSet

THETA = 10.0


def interval_sets():
    pair = st.tuples(st.floats(0, THETA), st.floats(0, THETA)).map(
        lambda ab: (min(ab), max(ab))
    )
    return st.lists(pair, max_size=6).map(IntervalSet)


class TestLatticeLaws:
    @given(interval_sets(), interval_sets())
    @settings(max_examples=80, deadline=None)
    def test_union_commutes(self, a, b):
        assert a.union(b) == b.union(a)

    @given(interval_sets(), interval_sets())
    @settings(max_examples=80, deadline=None)
    def test_intersection_commutes(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(interval_sets(), interval_sets(), interval_sets())
    @settings(max_examples=50, deadline=None)
    def test_union_associates(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @given(interval_sets())
    @settings(max_examples=50, deadline=None)
    def test_union_idempotent(self, a):
        assert a.union(a) == a
        assert a.intersection(a) == a

    @given(interval_sets())
    @settings(max_examples=50, deadline=None)
    def test_empty_is_identity(self, a):
        assert a.union(IntervalSet.empty()) == a
        assert a.intersection(IntervalSet.empty()).is_empty

    @given(interval_sets())
    @settings(max_examples=50, deadline=None)
    def test_intersection_with_whole(self, a):
        clipped = a.clip(0.0, THETA)
        assert clipped.intersection(IntervalSet.whole(THETA)) == clipped


class TestComplementLaws:
    @given(interval_sets())
    @settings(max_examples=80, deadline=None)
    def test_complement_partitions_measure(self, a):
        clipped = a.clip(0.0, THETA)
        c = clipped.complement(THETA)
        assert clipped.measure() + c.measure() == __import__(
            "pytest"
        ).approx(THETA, abs=1e-6)

    @given(interval_sets())
    @settings(max_examples=60, deadline=None)
    def test_double_complement_measure_preserved(self, a):
        clipped = a.clip(0.0, THETA)
        back = clipped.complement(THETA).complement(THETA)
        assert back.measure() == __import__("pytest").approx(
            clipped.measure(), abs=1e-6
        )

    @given(interval_sets(), interval_sets())
    @settings(max_examples=60, deadline=None)
    def test_de_morgan_measure(self, a, b):
        a, b = a.clip(0.0, THETA), b.clip(0.0, THETA)
        lhs = a.intersection(b).complement(THETA)
        rhs = a.complement(THETA).union(b.complement(THETA))
        assert lhs.measure() == __import__("pytest").approx(
            rhs.measure(), abs=1e-6
        )


class TestStructuralInvariants:
    @given(interval_sets())
    @settings(max_examples=80, deadline=None)
    def test_normalized_disjoint_and_sorted(self, a):
        intervals = a.intervals
        for (a1, b1), (a2, b2) in zip(intervals, intervals[1:]):
            assert b1 < a2  # disjoint with a genuine gap
        for lo, hi in intervals:
            assert lo <= hi

    @given(interval_sets(), st.floats(0, THETA))
    @settings(max_examples=60, deadline=None)
    def test_membership_consistent_with_intervals(self, a, t):
        member = t in a
        direct = any(lo <= t <= hi for lo, hi in a.intervals)
        assert member == direct


class TestMergeEpsCarried:
    """The merge tolerance must survive the algebra (it used to be
    silently reset to the default by every derived set)."""

    EPS = 0.5

    def loose(self, pairs):
        return IntervalSet(pairs, merge_eps=self.EPS)

    def test_unary_ops_keep_eps(self):
        s = self.loose([(0.0, 1.0)])
        assert s.merge_eps == self.EPS
        assert s.shift(2.0).merge_eps == self.EPS
        assert s.complement(THETA).merge_eps == self.EPS
        assert s.clip(0.0, THETA).merge_eps == self.EPS

    def test_binary_ops_take_looser_eps(self):
        a = self.loose([(0.0, 1.0)])
        b = IntervalSet([(3.0, 4.0)])  # default (tight) eps
        assert a.union(b).merge_eps == self.EPS
        assert b.union(a).merge_eps == self.EPS
        assert a.intersection(b).merge_eps == self.EPS

    def test_union_merges_with_carried_eps(self):
        """Regression: a union of loose sets used to merge with the
        *default* 1e-9, leaving gaps the operands would have closed."""
        a = self.loose([(0.0, 1.0)])
        b = self.loose([(1.3, 2.0)])
        u = a.union(b)
        assert u.intervals == ((0.0, 2.0),)

    def test_shift_merges_with_carried_eps(self):
        s = self.loose([(0.0, 1.0), (1.3, 2.0)])
        assert len(s.intervals) == 1
        assert len(s.shift(5.0).intervals) == 1


class TestComplementPartition:
    @given(interval_sets())
    @settings(max_examples=80, deadline=None)
    def test_double_complement_is_identity_up_to_measure(self, a):
        """complement(complement(S)) ≈ S: the symmetric difference is a
        null set (degenerate points may appear or vanish, nothing more)."""
        clipped = a.clip(0.0, THETA)
        back = clipped.complement(THETA).complement(THETA)
        gained = back.difference(clipped, THETA)
        lost = clipped.difference(back, THETA)
        assert gained.measure() == __import__("pytest").approx(0.0, abs=1e-6)
        assert lost.measure() == __import__("pytest").approx(0.0, abs=1e-6)

    @given(interval_sets(), st.floats(0, THETA))
    @settings(max_examples=80, deadline=None)
    def test_set_union_complement_covers_horizon(self, a, t):
        """S ∪ Sᶜ = [0, θ] — in measure and pointwise (up to merge_eps)."""
        clipped = a.clip(0.0, THETA)
        whole = clipped.union(clipped.complement(THETA))
        assert whole.measure() == __import__("pytest").approx(THETA, abs=1e-6)
        assert whole.contains(t, tol=whole.merge_eps)
