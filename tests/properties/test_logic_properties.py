"""Property-based tests for the logic layer: random formula round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ast import (
    And,
    Atomic,
    Bound,
    CslTrue,
    Expectation,
    ExpectedProbability,
    ExpectedSteadyState,
    MfAnd,
    MfNot,
    MfOr,
    MfTrue,
    Next,
    Not,
    Or,
    Probability,
    SteadyState,
    TimeInterval,
    Until,
)
from repro.logic.ast import atomic_propositions
from repro.logic.parser import parse_csl, parse_mfcsl
from repro.logic.printer import format_formula
from repro.logic.rewrite import REWRITE_RULES, optimize

names = st.sampled_from(["infected", "active", "x", "y_1", "not_infected"])
bounds = st.builds(
    Bound,
    st.sampled_from(["<", "<=", ">", ">="]),
    st.floats(0.0, 1.0, allow_nan=False).map(lambda p: round(p, 4)),
)
intervals = st.tuples(
    st.floats(0.0, 5.0, allow_nan=False).map(lambda x: round(x, 3)),
    st.floats(0.0, 5.0, allow_nan=False).map(lambda x: round(x, 3)),
).map(lambda ab: TimeInterval(min(ab), max(ab)))


def csl_formulas(depth: int = 3):
    base = st.one_of(st.just(CslTrue()), st.builds(Atomic, names))
    if depth == 0:
        return base
    sub = csl_formulas(depth - 1)
    paths = st.one_of(
        st.builds(Until, intervals, sub, sub),
        st.builds(Next, intervals, sub),
    )
    return st.one_of(
        base,
        st.builds(Not, sub),
        st.builds(And, sub, sub),
        st.builds(Or, sub, sub),
        st.builds(SteadyState, bounds, sub),
        st.builds(Probability, bounds, paths),
    )


def mfcsl_formulas(depth: int = 2):
    csl = csl_formulas(2)
    paths = st.one_of(
        st.builds(Until, intervals, csl, csl),
        st.builds(Next, intervals, csl),
    )
    base = st.one_of(
        st.just(MfTrue()),
        st.builds(Expectation, bounds, csl),
        st.builds(ExpectedSteadyState, bounds, csl),
        st.builds(ExpectedProbability, bounds, paths),
    )
    if depth == 0:
        return base
    sub = mfcsl_formulas(depth - 1)
    return st.one_of(
        base,
        st.builds(MfNot, sub),
        st.builds(MfAnd, sub, sub),
        st.builds(MfOr, sub, sub),
    )


class TestRoundTrips:
    @given(csl_formulas())
    @settings(max_examples=150, deadline=None)
    def test_csl_parse_inverts_print(self, formula):
        assert parse_csl(format_formula(formula)) == formula

    @given(mfcsl_formulas())
    @settings(max_examples=150, deadline=None)
    def test_mfcsl_parse_inverts_print(self, formula):
        assert parse_mfcsl(format_formula(formula)) == formula

    @given(mfcsl_formulas())
    @settings(max_examples=80, deadline=None)
    def test_printing_is_deterministic(self, formula):
        assert format_formula(formula) == format_formula(formula)

    @given(csl_formulas())
    @settings(max_examples=80, deadline=None)
    def test_formulas_hashable_and_self_equal(self, formula):
        assert formula == formula
        assert hash(formula) == hash(formula)

    @given(mfcsl_formulas())
    @settings(max_examples=80, deadline=None)
    def test_equal_formulas_hash_equal(self, formula):
        clone = parse_mfcsl(format_formula(formula))
        assert clone == formula
        assert hash(clone) == hash(formula)


class TestRewriteProperties:
    """The optimization pass composes with printing, parsing, hashing."""

    @given(mfcsl_formulas())
    @settings(max_examples=150, deadline=None)
    def test_optimize_is_idempotent(self, formula):
        once, _ = optimize(formula)
        twice, _ = optimize(once)
        assert twice == once

    @given(mfcsl_formulas())
    @settings(max_examples=150, deadline=None)
    def test_optimized_formula_round_trips(self, formula):
        opt, _ = optimize(formula)
        assert parse_mfcsl(format_formula(opt)) == opt

    @given(csl_formulas())
    @settings(max_examples=100, deadline=None)
    def test_optimized_csl_round_trips(self, formula):
        opt, _ = optimize(formula)
        assert parse_csl(format_formula(opt)) == opt

    @given(mfcsl_formulas())
    @settings(max_examples=100, deadline=None)
    def test_no_rules_is_identity(self, formula):
        same, report = optimize(formula, ())
        assert same is formula
        assert report.total == 0

    @given(mfcsl_formulas())
    @settings(max_examples=100, deadline=None)
    def test_atomic_propositions_never_grow(self, formula):
        opt, _ = optimize(formula)
        assert atomic_propositions(opt) <= atomic_propositions(formula)

    @given(mfcsl_formulas())
    @settings(max_examples=100, deadline=None)
    def test_optimized_formula_hashable(self, formula):
        for rules in (None, ("fold",), ("negation",), ("vacuity",),
                      ("dedup",)):
            opt, _ = optimize(formula, rules)
            assert opt == opt
            hash(opt)

    @given(mfcsl_formulas())
    @settings(max_examples=100, deadline=None)
    def test_single_rules_compose_to_fixpoint_of_all(self, formula):
        # Applying all rules once is idempotent even when followed by
        # any single rule family: no rule undoes another's work.
        opt, _ = optimize(formula)
        for rule in REWRITE_RULES:
            again, _ = optimize(opt, (rule,))
            roundtrip, _ = optimize(again)
            assert roundtrip == opt
