"""Property-based tests for the logic layer: random formula round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ast import (
    And,
    Atomic,
    Bound,
    CslTrue,
    Expectation,
    ExpectedProbability,
    ExpectedSteadyState,
    MfAnd,
    MfNot,
    MfOr,
    MfTrue,
    Next,
    Not,
    Or,
    Probability,
    SteadyState,
    TimeInterval,
    Until,
)
from repro.logic.parser import parse_csl, parse_mfcsl
from repro.logic.printer import format_formula

names = st.sampled_from(["infected", "active", "x", "y_1", "not_infected"])
bounds = st.builds(
    Bound,
    st.sampled_from(["<", "<=", ">", ">="]),
    st.floats(0.0, 1.0, allow_nan=False).map(lambda p: round(p, 4)),
)
intervals = st.tuples(
    st.floats(0.0, 5.0, allow_nan=False).map(lambda x: round(x, 3)),
    st.floats(0.0, 5.0, allow_nan=False).map(lambda x: round(x, 3)),
).map(lambda ab: TimeInterval(min(ab), max(ab)))


def csl_formulas(depth: int = 3):
    base = st.one_of(st.just(CslTrue()), st.builds(Atomic, names))
    if depth == 0:
        return base
    sub = csl_formulas(depth - 1)
    paths = st.one_of(
        st.builds(Until, intervals, sub, sub),
        st.builds(Next, intervals, sub),
    )
    return st.one_of(
        base,
        st.builds(Not, sub),
        st.builds(And, sub, sub),
        st.builds(Or, sub, sub),
        st.builds(SteadyState, bounds, sub),
        st.builds(Probability, bounds, paths),
    )


def mfcsl_formulas(depth: int = 2):
    csl = csl_formulas(2)
    paths = st.one_of(
        st.builds(Until, intervals, csl, csl),
        st.builds(Next, intervals, csl),
    )
    base = st.one_of(
        st.just(MfTrue()),
        st.builds(Expectation, bounds, csl),
        st.builds(ExpectedSteadyState, bounds, csl),
        st.builds(ExpectedProbability, bounds, paths),
    )
    if depth == 0:
        return base
    sub = mfcsl_formulas(depth - 1)
    return st.one_of(
        base,
        st.builds(MfNot, sub),
        st.builds(MfAnd, sub, sub),
        st.builds(MfOr, sub, sub),
    )


class TestRoundTrips:
    @given(csl_formulas())
    @settings(max_examples=150, deadline=None)
    def test_csl_parse_inverts_print(self, formula):
        assert parse_csl(format_formula(formula)) == formula

    @given(mfcsl_formulas())
    @settings(max_examples=150, deadline=None)
    def test_mfcsl_parse_inverts_print(self, formula):
        assert parse_mfcsl(format_formula(formula)) == formula

    @given(mfcsl_formulas())
    @settings(max_examples=80, deadline=None)
    def test_printing_is_deterministic(self, formula):
        assert format_formula(formula) == format_formula(formula)

    @given(csl_formulas())
    @settings(max_examples=80, deadline=None)
    def test_formulas_hashable_and_self_equal(self, formula):
        assert formula == formula
        assert hash(formula) == hash(formula)
