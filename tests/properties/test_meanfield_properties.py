"""Property-based tests for the mean-field layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc.generator import is_generator
from repro.meanfield.local_model import LocalModel
from repro.meanfield.overall_model import MeanFieldModel


def random_local_models():
    """Random K-state local models with mixed constant/occupancy rates."""

    def build(spec):
        k, entries = spec
        states = [f"s{i}" for i in range(k)]
        transitions = {}
        for (i, j), (constant, coeff, target) in entries.items():
            if constant is not None:
                transitions[(states[i], states[j])] = constant
            else:
                transitions[(states[i], states[j])] = (
                    lambda m, _c=coeff, _t=target % k: _c * m[_t]
                )
        labels = {states[i]: ["even" if i % 2 == 0 else "odd"] for i in range(k)}
        return LocalModel(states, transitions, labels)

    entry = st.one_of(
        st.tuples(st.floats(0.0, 5.0, allow_nan=False), st.none(), st.none()).map(
            lambda t: (t[0], None, None)
        ),
        st.tuples(
            st.none(), st.floats(0.0, 5.0, allow_nan=False), st.integers(0, 10)
        ).map(lambda t: (None, t[1], t[2])),
    )
    return st.integers(2, 4).flatmap(
        lambda k: st.dictionaries(
            st.tuples(st.integers(0, k - 1), st.integers(0, k - 1)).filter(
                lambda ij: ij[0] != ij[1]
            ),
            entry,
            min_size=1,
            max_size=k * (k - 1),
        ).map(lambda entries: (k, entries))
    ).map(build)


def occupancies(k: int):
    return (
        st.lists(
            st.floats(0.01, 1.0, allow_nan=False), min_size=k, max_size=k
        )
        .map(np.array)
        .map(lambda v: v / v.sum())
    )


class TestDriftProperties:
    @given(random_local_models(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_generator_is_valid_on_simplex(self, local, data):
        m = data.draw(occupancies(local.num_states))
        assert is_generator(local.generator(m))

    @given(random_local_models(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_drift_preserves_mass(self, local, data):
        model = MeanFieldModel(local)
        m = data.draw(occupancies(local.num_states))
        drift = model.drift(0.0, m)
        assert abs(drift.sum()) < 1e-10

    @given(random_local_models(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_trajectory_stays_on_simplex(self, local, data):
        model = MeanFieldModel(local)
        m0 = data.draw(occupancies(local.num_states))
        traj = model.trajectory(m0, horizon=2.0)
        for t in (0.5, 1.0, 2.0):
            m = traj(t)
            assert np.all(m >= 0.0)
            assert abs(m.sum() - 1.0) < 1e-9

    @given(random_local_models(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_empty_states_stay_empty_without_inflow(self, local, data):
        """A state with no incoming transitions and zero initial mass
        keeps zero mass (positivity of the flow)."""
        model = MeanFieldModel(local)
        targets = {tr.target for tr in local.transitions}
        isolated = [s for s in range(local.num_states) if s not in targets]
        if not isolated:
            return
        m0 = data.draw(occupancies(local.num_states))
        m0[isolated] = 0.0
        total = m0.sum()
        if total <= 0:
            return
        m0 = m0 / total
        traj = model.trajectory(m0, horizon=1.0)
        m_end = traj(1.0)
        for s in isolated:
            assert m_end[s] <= 1e-9
