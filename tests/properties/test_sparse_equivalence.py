"""Dense ↔ sparse backend equivalence across the model zoo.

The sparse matrix backend (``CheckOptions.matrix_backend="sparse"``)
must be a *drop-in* replacement: every transient question answered
through CSR action kernels has to agree with the dense Kolmogorov
reference to far better than the solver tolerances.  This suite forces
both backends on every zoo model small enough to afford dense solves
(``K ≤ 50``) and checks:

- cached transient matrices (``("absorbing", ·)`` and goal-chain
  signatures) agree entrywise to :data:`TOL`;
- vector actions (``transient_apply``, both sides) agree;
- full until probability vectors and curves agree;
- the degradation ladder preserves the answers: a sparse engine driven
  into its refinement cap falls back to the dense rung, records the
  downgrade, and still produces the dense answer;
- randomized occupancies and windows (hypothesis) keep the equivalence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking.context import EvaluationContext
from repro.checking.options import CheckOptions
from repro.checking.reachability import (
    SimpleUntilCurve,
    until_probabilities_simple,
)
from repro.checking.transform import (
    UntilPartition,
    absorbing_generator_function,
    goal_generator_function,
)
from repro.logic.ast import TimeInterval
from repro.models import (
    PopulationParameters,
    botnet_model,
    diurnal_virus_model,
    gossip_model,
    load_balancing_model,
    population_model,
    sir_model,
    sis_model,
    virus_model,
)
from repro.models.load_balancing import LoadBalancingParameters
from repro.models.virus import SETTING_1, SETTING_2

#: Equivalence bound — far below the 1e-8 acceptance criterion so any
#: structural disagreement (not mere solver noise) is caught.
TOL = 1e-10

ZOO = {
    "virus1": lambda: virus_model(SETTING_1),
    "virus2": lambda: virus_model(SETTING_2),
    "botnet": botnet_model,
    "sis": sis_model,
    "sir": sir_model,
    "gossip": gossip_model,
    "diurnal": diurnal_virus_model,
    "loadbalance": load_balancing_model,
    "loadbalance31": lambda: load_balancing_model(
        LoadBalancingParameters(buffer=30)
    ),
    "population41": lambda: population_model(
        PopulationParameters(lam=20.0, mu=1.0, capacity=40)
    ),
}

ZOO_NAMES = sorted(ZOO)


def _model(name):
    model = ZOO[name]()
    assert model.num_states <= 50
    return model


def _occupancy(k: int) -> np.ndarray:
    # Geometric decay, mass concentrated on low states: realistic for
    # every zoo model, and it keeps virus2's epidemiological variant
    # (whose infection rate divides by an occupancy) away from the
    # near-zero-occupancy regime where its trajectory turns stiff.
    occ = 0.25 ** np.arange(k, dtype=float)
    return occ / occ.sum()


#: Solver settings tight enough that backend disagreement — not solver
#: noise — is the only thing that can break the 1e-10 equivalence bound.
TIGHT = dict(ode_rtol=1e-11, ode_atol=1e-13, propagator_tol=1e-11)


def _contexts(model, **sparse_options):
    occupancy = _occupancy(model.num_states)
    dense = EvaluationContext(
        model, occupancy, options=CheckOptions(matrix_backend="dense", **TIGHT)
    )
    options = dict(TIGHT)
    options.update(sparse_options)
    sparse = EvaluationContext(
        model,
        occupancy,
        options=CheckOptions(matrix_backend="sparse", **options),
    )
    return dense, sparse


def _absorbed(model) -> frozenset:
    return frozenset({model.num_states - 1})


@pytest.mark.parametrize("name", ZOO_NAMES)
def test_absorbing_transient_matrix_equivalence(name):
    model = _model(name)
    dense_ctx, sparse_ctx = _contexts(model)
    absorbed = _absorbed(model)
    signature = ("absorbing", absorbed)
    for t_start, duration in ((0.0, 0.8), (0.3, 0.5)):
        q = absorbing_generator_function(
            dense_ctx.generator_function(), absorbed
        )
        pi_dense = dense_ctx.transient_matrix(signature, q, t_start, duration)
        q_s = absorbing_generator_function(
            sparse_ctx.generator_function(), absorbed
        )
        pi_sparse = sparse_ctx.transient_matrix(
            signature, q_s, t_start, duration
        )
        assert float(np.max(np.abs(pi_sparse - pi_dense))) <= TOL


@pytest.mark.parametrize("name", ZOO_NAMES)
def test_goal_chain_transient_matrix_equivalence(name):
    model = _model(name)
    k = model.num_states
    dense_ctx, sparse_ctx = _contexts(model)
    gamma2 = frozenset({k - 1})
    gamma1 = frozenset(range(k - 1))
    partition = UntilPartition.from_sets(k, gamma1, gamma2)
    signature = ("goal", partition)
    q_dense = goal_generator_function(
        dense_ctx.generator_function(), partition
    )
    q_sparse = goal_generator_function(
        sparse_ctx.generator_function(), partition
    )
    pi_dense = dense_ctx.transient_matrix(signature, q_dense, 0.0, 0.7)
    pi_sparse = sparse_ctx.transient_matrix(signature, q_sparse, 0.0, 0.7)
    assert pi_dense.shape == (k + 1, k + 1)
    assert float(np.max(np.abs(pi_sparse - pi_dense))) <= TOL


@pytest.mark.parametrize("side", ["left", "right"])
@pytest.mark.parametrize("name", ZOO_NAMES)
def test_transient_apply_equivalence(name, side):
    model = _model(name)
    k = model.num_states
    dense_ctx, sparse_ctx = _contexts(model)
    absorbed = _absorbed(model)
    signature = ("absorbing", absorbed)
    vector = np.linspace(0.5, 1.5, k)
    q_dense = absorbing_generator_function(
        dense_ctx.generator_function(), absorbed
    )
    q_sparse = absorbing_generator_function(
        sparse_ctx.generator_function(), absorbed
    )
    expected = dense_ctx.transient_apply(
        signature, q_dense, 0.1, 0.9, vector, side=side
    )
    actual = sparse_ctx.transient_apply(
        signature, q_sparse, 0.1, 0.9, vector, side=side
    )
    assert float(np.max(np.abs(actual - expected))) <= TOL
    # The sparse context must have answered through an action engine.
    assert sparse_ctx.stats.propagator_engines >= 1


@pytest.mark.parametrize("name", ZOO_NAMES)
def test_until_probabilities_equivalence(name):
    model = _model(name)
    k = model.num_states
    dense_ctx, sparse_ctx = _contexts(model)
    gamma2 = frozenset({k - 1})
    gamma1 = frozenset(range(k - 1))
    interval = TimeInterval(0.25, 1.0)
    expected = until_probabilities_simple(
        dense_ctx, gamma1, gamma2, interval
    )
    actual = until_probabilities_simple(
        sparse_ctx, gamma1, gamma2, interval
    )
    assert float(np.max(np.abs(actual - expected))) <= TOL


def test_until_curve_equivalence():
    model = _model("loadbalance31")
    k = model.num_states
    gamma2 = frozenset(range(k // 2, k))
    gamma1 = frozenset(range(k))
    interval = TimeInterval(0.2, 1.2)
    theta = 3.0
    dense_ctx, sparse_ctx = _contexts(model)
    dense_curve = SimpleUntilCurve(
        dense_ctx, gamma1, gamma2, interval, theta, method="propagate"
    )
    sparse_curve = SimpleUntilCurve(
        sparse_ctx, gamma1, gamma2, interval, theta, method="propagate"
    )
    ts = np.linspace(0.0, theta, 13)
    dense_values = dense_curve.values_many(ts)
    sparse_values = sparse_curve.values_many(ts)
    assert float(np.max(np.abs(sparse_values - dense_values))) <= 1e-8
    state = k // 2 - 1
    threshold = float(dense_values[:, state].mean())
    assert sparse_curve.crossing_times(state, threshold) == pytest.approx(
        dense_curve.crossing_times(state, threshold), abs=1e-6
    )


class TestDegradationLadder:
    """A failing sparse engine degrades to dense — same answers."""

    def _strangled(self, model):
        """Sparse context whose action engine can never meet its tol."""
        occupancy = _occupancy(model.num_states)
        return EvaluationContext(
            model,
            occupancy,
            options=CheckOptions(
                matrix_backend="sparse",
                propagator_tol=1e-15,
                max_refinements=0,
                ode_rtol=TIGHT["ode_rtol"],
                ode_atol=TIGHT["ode_atol"],
            ),
        )

    @pytest.mark.parametrize("name", ["virus2", "loadbalance"])
    def test_transient_apply_falls_back_dense(self, name):
        model = _model(name)
        k = model.num_states
        dense_ctx, _ = _contexts(model)
        strangled = self._strangled(model)
        absorbed = _absorbed(model)
        signature = ("absorbing", absorbed)
        vector = np.linspace(0.5, 1.5, k)
        q_dense = absorbing_generator_function(
            dense_ctx.generator_function(), absorbed
        )
        q_sparse = absorbing_generator_function(
            strangled.generator_function(), absorbed
        )
        expected = dense_ctx.transient_apply(
            signature, q_dense, 0.0, 2.0, vector, side="right"
        )
        actual = strangled.transient_apply(
            signature, q_sparse, 0.0, 2.0, vector, side="right"
        )
        assert float(np.max(np.abs(actual - expected))) <= TOL
        # The fall-back must be on the record, not silent.
        assert any(
            d.from_rung == "sparse" for d in strangled.trace.downgrades
        )

    @pytest.mark.parametrize("name", ["virus2", "loadbalance"])
    def test_transient_matrix_descends_ladder(self, name):
        model = _model(name)
        dense_ctx, _ = _contexts(model)
        strangled = self._strangled(model)
        absorbed = _absorbed(model)
        signature = ("absorbing", absorbed)
        q_dense = absorbing_generator_function(
            dense_ctx.generator_function(), absorbed
        )
        q_sparse = absorbing_generator_function(
            strangled.generator_function(), absorbed
        )
        expected = dense_ctx.transient_matrix(signature, q_dense, 0.0, 2.0)
        actual = strangled.transient_matrix(signature, q_sparse, 0.0, 2.0)
        assert float(np.max(np.abs(actual - expected))) <= TOL
        assert any(
            d.from_rung == "sparse" for d in strangled.trace.downgrades
        )

    def test_until_probabilities_survive_ladder(self):
        model = _model("loadbalance")
        k = model.num_states
        dense_ctx, _ = _contexts(model)
        strangled = self._strangled(model)
        gamma2 = frozenset({k - 1})
        gamma1 = frozenset(range(k - 1))
        interval = TimeInterval(0.0, 1.0)
        expected = until_probabilities_simple(
            dense_ctx, gamma1, gamma2, interval
        )
        actual = until_probabilities_simple(
            strangled, gamma1, gamma2, interval
        )
        assert float(np.max(np.abs(actual - expected))) <= TOL


class TestRandomizedEquivalence:
    @given(
        weights=st.lists(
            st.floats(min_value=0.05, max_value=1.0),
            min_size=13,
            max_size=13,
        ),
        t_start=st.floats(min_value=0.0, max_value=1.0),
        duration=st.floats(min_value=0.05, max_value=1.5),
    )
    @settings(max_examples=10, deadline=None)
    def test_loadbalance_random_windows(self, weights, t_start, duration):
        model = load_balancing_model(LoadBalancingParameters(buffer=12))
        k = model.num_states
        occupancy = np.asarray(weights)
        occupancy = occupancy / occupancy.sum()
        dense_ctx = EvaluationContext(
            model,
            occupancy,
            options=CheckOptions(matrix_backend="dense", **TIGHT),
        )
        sparse_ctx = EvaluationContext(
            model,
            occupancy,
            options=CheckOptions(matrix_backend="sparse", **TIGHT),
        )
        absorbed = frozenset({0, k - 1})
        signature = ("absorbing", absorbed)
        q_dense = absorbing_generator_function(
            dense_ctx.generator_function(), absorbed
        )
        q_sparse = absorbing_generator_function(
            sparse_ctx.generator_function(), absorbed
        )
        pi_dense = dense_ctx.transient_matrix(
            signature, q_dense, t_start, duration
        )
        pi_sparse = sparse_ctx.transient_matrix(
            signature, q_sparse, t_start, duration
        )
        assert float(np.max(np.abs(pi_sparse - pi_dense))) <= TOL
