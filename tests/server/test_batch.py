"""Tests for the batch API (``CheckingService.handle_batch`` + ``/batch``).

Covers the batch contract end to end: envelope validation, per-item
error isolation (a malformed item must not fail its siblings), the
shared batch budget, admission control that rejects whole envelopes
without touching the warm cache, duplicate-item coalescing through the
response cache, and counter consistency under concurrent batches.
"""

import threading

import pytest

from repro.exceptions import EXIT_BUDGET_EXCEEDED, EXIT_MODEL_ERROR
from repro.server.service import (
    HTTP_STATUS_REJECTED,
    CheckingService,
    ServerConfig,
)

FORMULA = "EP[<0.3](not_infected U[0,1] infected)"
FORMULA2 = "E[<0.5](infected)"


def _request(**overrides) -> dict:
    payload = {
        "command": "check",
        "model": "virus1",
        "occupancy": [0.8, 0.15, 0.05],
        "formula": FORMULA,
    }
    payload.update(overrides)
    return payload


@pytest.fixture
def service():
    svc = CheckingService(ServerConfig())
    try:
        yield svc
    finally:
        svc.close()


class TestEnvelopeValidation:
    def test_non_object_envelope(self, service):
        status, body = service.handle_batch([_request()])
        assert status == 400
        assert "JSON object" in body["message"]

    def test_missing_queries(self, service):
        status, body = service.handle_batch({})
        assert status == 400
        assert "queries" in body["message"]

    def test_empty_queries(self, service):
        status, body = service.handle_batch({"queries": []})
        assert status == 400

    def test_too_many_items(self):
        svc = CheckingService(ServerConfig(max_batch_items=4))
        try:
            status, body = svc.handle_batch(
                {"queries": [_request()] * 5}
            )
            assert status == 400
            assert "at most 4" in body["message"]
        finally:
            svc.close()

    def test_bad_envelope_deadline(self, service):
        status, body = service.handle_batch(
            {"queries": [_request()], "deadline": "soon"}
        )
        assert status == 400
        status, body = service.handle_batch(
            {"queries": [_request()], "deadline": -1.0}
        )
        assert status == 400

    def test_bad_envelope_max_solves(self, service):
        status, body = service.handle_batch(
            {"queries": [_request()], "max_solves": 0}
        )
        assert status == 400

    def test_bad_config_bound(self):
        with pytest.raises(Exception):
            ServerConfig(max_batch_items=0)

    def test_closed_service(self):
        svc = CheckingService(ServerConfig())
        svc.close()
        status, body = svc.handle_batch({"queries": [_request()]})
        assert body["status"] == "error"


class TestBatchAnswers:
    def test_batch_matches_single_requests(self, service):
        queries = [
            _request(),
            _request(formula=FORMULA2),
            _request(occupancy=[0.6, 0.3, 0.1]),
        ]
        singles = [service.handle(dict(q)) for q in queries]
        status, body = service.handle_batch(
            {"queries": [dict(q) for q in queries]}
        )
        assert status == 200
        assert body["status"] == "ok"
        assert body["items"] == 3
        assert body["errors"] == 0
        for (s_status, s_body), b_body, code in zip(
            singles, body["results"], body["exit_codes"]
        ):
            assert s_status == 200
            assert b_body["verdict"] == s_body["verdict"]
            assert code == s_body["exit_code"]

    def test_one_malformed_item_of_eight(self, service):
        queries = [_request() for _ in range(8)]
        queries[3] = {"command": "explode"}
        status, body = service.handle_batch({"queries": queries})
        # Partial failure is per item: the envelope still answers 200.
        assert status == 200
        assert body["items"] == 8
        assert body["errors"] == 1
        assert body["exit_codes"][3] == EXIT_MODEL_ERROR
        assert body["results"][3]["status"] == "error"
        for i in range(8):
            if i == 3:
                continue
            assert body["exit_codes"][i] == 0
            assert body["results"][i]["status"] == "ok"
        assert service.stats.service_batch_item_errors == 1

    def test_duplicate_items_hit_the_response_cache(self, service):
        status, body = service.handle_batch(
            {"queries": [_request(), _request()]}
        )
        assert status == 200
        assert body["errors"] == 0
        assert body["cache"]["hits"] == 1
        assert (
            body["results"][0]["verdict"] == body["results"][1]["verdict"]
        )

    def test_check_batch_is_the_public_alias(self, service):
        status, body = service.check_batch({"queries": [_request()]})
        assert status == 200
        assert body["exit_codes"] == [0]

    def test_batch_counters(self, service):
        service.handle_batch({"queries": [_request(), _request()]})
        assert service.stats.service_batch_requests == 1
        assert service.stats.service_batch_items == 2
        assert service.stats.service_requests == 2


class TestBatchBudget:
    def test_exhausted_deadline_gives_per_item_exit_5(self, service):
        status, body = service.handle_batch(
            {"queries": [_request(), _request(formula=FORMULA2)],
             "deadline": 1e-6}
        )
        # The envelope itself succeeds; every item ran out of the
        # shared budget and says so in its own slot.
        assert status == 200
        assert body["errors"] == 2
        assert body["exit_codes"] == [
            EXIT_BUDGET_EXCEEDED,
            EXIT_BUDGET_EXCEEDED,
        ]
        for item in body["results"]:
            assert item["status"] == "error"

    def test_envelope_max_solves_is_item_default(self, service):
        # One solve is not enough for a cold cSat scan; the envelope's
        # max_solves becomes the item's default and trips its budget.
        status, body = service.handle_batch(
            {
                "queries": [_request(command="csat", theta=5.0)],
                "max_solves": 1,
            }
        )
        assert status == 200
        assert body["exit_codes"] == [EXIT_BUDGET_EXCEEDED]

    def test_item_max_solves_overrides_envelope(self, service):
        status, body = service.handle_batch(
            {
                "queries": [
                    _request(
                        command="csat", theta=5.0, max_solves=100000
                    )
                ],
                "max_solves": 1,
            }
        )
        assert status == 200
        assert body["exit_codes"] == [0]


class TestBatchAdmission:
    def test_rejected_batch_does_not_evict_warm_cache(self):
        svc = CheckingService(
            ServerConfig(max_concurrent=1, queue_timeout=0.05)
        )
        try:
            status, _ = svc.handle(_request())
            assert status == 200
            warm_entries = len(svc._entries)
            assert warm_entries == 1
            # Occupy the only worker slot, then ask for a batch.
            assert svc._slots.acquire(timeout=1.0)
            try:
                status, body = svc.handle_batch(
                    {"queries": [_request(formula=FORMULA2)]}
                )
            finally:
                svc._slots.release()
            assert status == HTTP_STATUS_REJECTED
            assert body["error_class"] == "AdmissionRejected"
            assert body["exit_code"] == EXIT_BUDGET_EXCEEDED
            assert svc.stats.service_rejections == 1
            # The warm entry survived untouched and still answers.
            assert len(svc._entries) == warm_entries
            status, body = svc.handle(_request())
            assert status == 200
            assert body["cache"]["hit"] is True
        finally:
            svc.close()


class TestConcurrentBatches:
    def test_stats_stay_consistent(self, service):
        n_threads, n_items = 4, 4
        queries = [
            _request() if i % 2 == 0 else _request(formula=FORMULA2)
            for i in range(n_items)
        ]
        outcomes = [None] * n_threads

        def run(slot):
            outcomes[slot] = service.handle_batch(
                {"queries": [dict(q) for q in queries]}
            )

        threads = [
            threading.Thread(target=run, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for status, body in outcomes:
            assert status == 200
            assert body["items"] == n_items
            assert body["errors"] == 0
            assert body["exit_codes"] == [0] * n_items
        payload = service.stats_payload()["service"]
        assert payload["service_batch_requests"] == n_threads
        assert payload["service_batch_items"] == n_threads * n_items
        assert payload["service_requests"] == n_threads * n_items
        assert payload["service_batch_item_errors"] == 0
        # Every item was answered by a computation, a cache hit or a
        # coalesced wait — the accounting must add up exactly.
        accounted = (
            payload["service_cache_hits"]
            + payload["service_coalesced"]
            + payload["service_cache_misses"]
            + payload["service_context_reuses"]
        )
        assert accounted >= n_threads * n_items - 2  # the 2 cold solves
