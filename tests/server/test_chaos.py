"""Chaos suite: fault injection against the serving stack.

Every test here breaks something on purpose — SIGKILLs a supervised
query worker mid-computation, corrupts a spill file, SIGTERMs a server
with a batch in flight — and asserts the blast radius stays confined to
the documented boundary: one query, one spill file, zero lost in-flight
work.  The ``server-chaos`` CI job runs exactly this file
(``pytest -m chaos``).
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.checking.global_ import MFModelChecker
from repro.exceptions import EXIT_BUDGET_EXCEEDED, EXIT_SATISFIED
from repro.parallel import fork_available
from repro.server.service import CheckingService, ServerConfig

pytestmark = pytest.mark.chaos

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)

FORMULA = "EP[<0.3](not_infected U[0,1] infected)"
FORMULA_B = "EP[<0.6](not_infected U[0,1] infected)"
OCCUPANCY = [0.8, 0.15, 0.05]


def check_request(**overrides):
    payload = {
        "command": "check",
        "model": "virus1",
        "occupancy": list(OCCUPANCY),
        "formula": FORMULA,
    }
    payload.update(overrides)
    return payload


# ----------------------------------------------------------------------
# Scenario 1: a SIGKILLed worker kills one query, not the server
# ----------------------------------------------------------------------


@needs_fork
class TestWorkerKill:
    def test_killed_worker_fails_one_query_server_survives(
        self, monkeypatch
    ):
        """SIGKILL a supervised worker mid-query: that query answers
        exit code 5 while a concurrent query (different entry, its own
        worker) succeeds and previously warm responses still hit."""
        service = CheckingService(
            ServerConfig(isolate="process", max_concurrent=4)
        )
        try:
            # Warm a response *before* the chaos so we can prove the
            # cache survives the crash.
            status, body = service.handle(check_request())
            assert status == 200

            # Slow every computation down (the fork child inherits the
            # patched class) so the worker is alive long enough to kill.
            real = MFModelChecker.check_detailed

            def slow(self, formula, occupancy, ctx=None):
                time.sleep(1.5)
                return real(self, formula, occupancy, ctx=ctx)

            monkeypatch.setattr(MFModelChecker, "check_detailed", slow)

            results = {}

            def run(name, request):
                results[name] = service.handle(request)

            victim = threading.Thread(
                target=run,
                args=("victim", check_request(formula=FORMULA_B)),
            )
            victim.start()
            victim_pid = self._wait_for_worker(service)

            survivor = threading.Thread(
                target=run,
                args=("survivor", check_request(model="virus2")),
            )
            survivor.start()

            os.kill(victim_pid, signal.SIGKILL)
            victim.join(timeout=30)
            survivor.join(timeout=60)
            assert not victim.is_alive() and not survivor.is_alive()

            status, body = results["victim"]
            assert status == 503
            assert body["error_class"] == "WorkerCrashError"
            assert body["exit_code"] == EXIT_BUDGET_EXCEEDED
            assert "SIGKILL" in body["message"]

            status, body = results["survivor"]
            assert status == 200
            assert body["status"] == "ok"

            # The crash is accounted for and the server still serves
            # the pre-chaos answer from cache.
            assert service.stats.service_worker_crashes == 1
            assert len(service.supervisor.crashes) == 1
            status, body = service.handle(check_request())
            assert status == 200
            assert body["cache"]["hit"] is True
        finally:
            service.close()

    @staticmethod
    def _wait_for_worker(service, timeout=30.0):
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            pids = service.supervisor.active_pids()
            if pids:
                return pids[0]
            time.sleep(0.01)
        raise AssertionError("no supervised worker appeared")

    def test_crashed_query_succeeds_on_retry(self, monkeypatch):
        """After a crash the breaker degrades to in-process execution,
        so retrying the same query immediately succeeds."""
        service = CheckingService(
            ServerConfig(isolate="process", max_concurrent=2)
        )
        try:
            real = MFModelChecker.check_detailed
            armed = {"on": True}

            def slow(self, formula, occupancy, ctx=None):
                if armed["on"]:
                    time.sleep(1.5)
                return real(self, formula, occupancy, ctx=ctx)

            monkeypatch.setattr(MFModelChecker, "check_detailed", slow)

            results = {}
            t = threading.Thread(
                target=lambda: results.update(
                    first=service.handle(check_request())
                )
            )
            t.start()
            pid = self._wait_for_worker(service)
            os.kill(pid, signal.SIGKILL)
            t.join(timeout=30)
            assert results["first"][0] == 503

            armed["on"] = False
            status, body = service.handle(check_request())
            assert status == 200
            assert body["exit_code"] in (0, 1, 7)
            assert service.stats.service_worker_crashes == 1
        finally:
            service.close()


# ----------------------------------------------------------------------
# Scenario 2: a corrupted spill file is quarantined, read at most once
# ----------------------------------------------------------------------


class TestSpillCorruption:
    def corrupt(self, path: Path) -> None:
        raw = bytearray(path.read_bytes())
        # Flip bits in the payload region (past the magic + checksum).
        for offset in range(50, min(80, len(raw))):
            raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))

    def spill_one_entry(self, cache_dir) -> dict:
        """Run one query against a spilling service; return its body."""
        service = CheckingService(ServerConfig(cache_dir=str(cache_dir)))
        status, body = service.handle(check_request())
        assert status == 200
        service.close()  # spills the warm entry
        return body

    def test_corrupt_spill_is_quarantined_and_recomputed(self, tmp_path):
        clean_body = self.spill_one_entry(tmp_path)
        (spill_file,) = list(tmp_path.glob("entry-*.pkl"))
        self.corrupt(spill_file)

        service = CheckingService(ServerConfig(cache_dir=str(tmp_path)))
        try:
            status, body = service.handle(check_request())
            # The poisoned file never reaches the answer: the query
            # recomputes and matches the pre-corruption verdict.
            assert status == 200
            assert body["cache"]["hit"] is False
            assert body["verdict"] == clean_body["verdict"]
            assert service.stats.service_spill_quarantined == 1
            assert service.stats.service_spill_loads == 0
            # The evidence is set aside, not deleted — and the probe
            # path is clear of it.
            assert not spill_file.exists()
            assert spill_file.with_name(
                spill_file.name + ".corrupt"
            ).exists()
        finally:
            service.close()

    def test_corrupt_spill_read_at_most_once(self, tmp_path, monkeypatch):
        """Regression: a known-bad spill used to be re-read (and
        re-deserialized) on every cold probe of its key; now the first
        failure blacklists the key in memory."""
        self.spill_one_entry(tmp_path)
        (spill_file,) = list(tmp_path.glob("entry-*.pkl"))
        self.corrupt(spill_file)

        reads = []
        real_read = CheckingService._read_spill

        def counting_read(self, path, key):
            reads.append(path)
            return real_read(self, path, key)

        monkeypatch.setattr(CheckingService, "_read_spill", counting_read)

        service = CheckingService(ServerConfig(cache_dir=str(tmp_path)))
        try:
            status, _ = service.handle(check_request())
            assert status == 200
            assert len(reads) == 1

            # Drop the warm entry without spilling, simulating an
            # eviction — the next request probes cold again...
            with service._lock:
                service._entries.clear()
            status, _ = service.handle(check_request())
            assert status == 200
            # ...but the quarantined key is never re-read from disk.
            assert len(reads) == 1
            assert service.stats.service_spill_quarantined == 1
        finally:
            service.close()

    @pytest.mark.parametrize(
        "vandalize",
        [
            lambda p: p.write_bytes(b""),  # truncated to nothing
            lambda p: p.write_bytes(b"not a spill file at all"),
            lambda p: p.write_bytes(p.read_bytes()[:40]),  # cut mid-header
        ],
    )
    def test_unreadable_spill_variants_quarantine(self, tmp_path, vandalize):
        self.spill_one_entry(tmp_path)
        (spill_file,) = list(tmp_path.glob("entry-*.pkl"))
        vandalize(spill_file)
        service = CheckingService(ServerConfig(cache_dir=str(tmp_path)))
        try:
            status, body = service.handle(check_request())
            assert status == 200
            assert body["status"] == "ok"
            assert service.stats.service_spill_quarantined == 1
        finally:
            service.close()

    def test_good_respill_lifts_quarantine(self, tmp_path):
        """A fresh, verified spill supersedes the corruption verdict:
        the next service generation revives warm state again."""
        self.spill_one_entry(tmp_path)
        (spill_file,) = list(tmp_path.glob("entry-*.pkl"))
        self.corrupt(spill_file)

        service = CheckingService(ServerConfig(cache_dir=str(tmp_path)))
        status, _ = service.handle(check_request())
        assert status == 200
        assert service.stats.service_spill_quarantined == 1
        service.close()  # re-spills the recomputed warm entry

        revived = CheckingService(ServerConfig(cache_dir=str(tmp_path)))
        try:
            status, body = revived.handle(check_request())
            assert status == 200
            assert body["cache"]["hit"] is True
            assert revived.stats.service_spill_loads == 1
            assert revived.stats.service_spill_quarantined == 0
        finally:
            revived.close()


# ----------------------------------------------------------------------
# Scenario 3: SIGTERM with a batch in flight drains gracefully
# ----------------------------------------------------------------------


class TestGracefulDrain:
    def start_server(self, cache_dir, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src"
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                str(cache_dir),
                "--drain-deadline",
                "30",
                *extra,
            ],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        line = proc.stdout.readline()
        match = re.search(r"http://\S+", line)
        assert match, f"no listening line, got {line!r}"
        return proc, match.group(0)

    @staticmethod
    def post(url, path, payload, timeout=120):
        request = urllib.request.Request(
            url + path,
            json.dumps(payload).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_sigterm_drains_batch_and_restart_serves_warm(self, tmp_path):
        """SIGTERM lands while an 8-query batch is in flight: the batch
        finishes (no dropped items), the server exits cleanly after
        spilling, and a restarted server answers the same queries warm
        from the shutdown spill."""
        proc, url = self.start_server(tmp_path)
        try:
            queries = [
                check_request(
                    occupancy=[0.8 - i * 0.02, 0.15 + i * 0.01, 0.05 + i * 0.01]
                )
                for i in range(8)
            ]
            outcome = {}

            def send_batch():
                outcome["batch"] = self.post(
                    url, "/batch", {"queries": queries}
                )

            sender = threading.Thread(target=send_batch)
            sender.start()
            time.sleep(0.4)  # let the batch get mid-flight
            proc.send_signal(signal.SIGTERM)

            sender.join(timeout=120)
            assert not sender.is_alive()
            status, body = outcome["batch"]
            assert status == 200, body
            assert body["items"] == 8
            assert body["errors"] == 0
            assert all(
                code in (0, 1, 7) for code in body["exit_codes"]
            )

            assert proc.wait(timeout=60) == 0
            assert list(tmp_path.glob("entry-*.pkl")), "nothing spilled"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        # Generation two: the drain-time spill must serve warm answers.
        proc2, url2 = self.start_server(tmp_path)
        try:
            status, body = self.post(url2, "/query", queries[0])
            assert status == 200
            assert body["cache"]["hit"] is True
        finally:
            proc2.send_signal(signal.SIGTERM)
            assert proc2.wait(timeout=60) == 0

    def test_requests_during_drain_get_503_with_retry_after(self):
        """A draining service answers new work 503 + Retry-After while
        the health endpoint steers load balancers away."""
        service = CheckingService(ServerConfig(drain_deadline=5.0))
        try:
            status, body = service.handle(check_request())
            assert status == 200
            service.begin_drain()
            status, body = service.handle(check_request())
            assert status == 503
            assert body["error_class"] == "Draining"
            assert body["retry_after"] == 5.0
            status, body = service.health_payload()
            assert status == 503
            assert body["state"] == "draining"
            assert service.stats.service_drain_rejections == 1
            assert service.drain(timeout=5.0) is True
        finally:
            service.close()


# ----------------------------------------------------------------------
# Isolation end to end: warm-path semantics are unchanged under forks
# ----------------------------------------------------------------------


@needs_fork
class TestIsolatedSemantics:
    def test_isolated_answers_match_inline_answers(self):
        inline = CheckingService(ServerConfig(isolate="none"))
        forked = CheckingService(ServerConfig(isolate="process"))
        try:
            requests = [
                check_request(),
                check_request(formula=FORMULA_B),
                check_request(command="value", formula="Pr(true U[0,1] infected)"),
            ]
            for request in requests:
                s1, b1 = inline.handle(request)
                s2, b2 = forked.handle(request)
                assert s1 == s2
                for field in ("verdict", "value", "exit_code"):
                    assert b1.get(field) == b2.get(field), field
            assert forked.stats.service_supervised == len(requests)
        finally:
            inline.close()
            forked.close()

    def test_worker_warm_state_ships_back_to_parent(self):
        """The transient matrices a forked worker computes must land in
        the parent's cache — the second query reuses them instead of
        re-solving."""
        service = CheckingService(ServerConfig(isolate="process"))
        try:
            service.handle(check_request())
            entry = next(iter(service._entries.values()))
            misses_after_cold = entry.stats.transient_cache_misses
            assert misses_after_cold > 0

            # Same window, different threshold: new response key, same
            # transient solves — warm if (and only if) the worker's
            # cache made it home.
            status, body = service.handle(
                check_request(formula=FORMULA_B)
            )
            assert status == 200
            assert entry.stats.transient_cache_misses == misses_after_cold
            assert entry.stats.transient_cache_hits > 0
        finally:
            service.close()
