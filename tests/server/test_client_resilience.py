"""Tests for the client's retry, backoff and circuit-breaker behaviour.

The scripted tests shadow ``service.handle`` on a live in-process
server, so the retries travel the real HTTP path; sleeps and jitter are
injected, so no test actually waits.
"""

import random
import threading

import pytest

from repro.exceptions import CheckingError
from repro.server.client import (
    RETRYABLE_ERROR_CLASSES,
    ServerClient,
    response_is_retryable,
)
from repro.server.http import make_server
from repro.server.service import CheckingService, ServerConfig

FORMULA = "EP[<0.3](not_infected U[0,1] infected)"

REQUEST = {
    "command": "check",
    "model": "virus1",
    "occupancy": [0.8, 0.15, 0.05],
    "formula": FORMULA,
}


@pytest.fixture
def server():
    srv = make_server(port=0, config=ServerConfig())
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


def make_client(server, **kwargs):
    host, port = server.server_address[:2]
    kwargs.setdefault("timeout", 60.0)
    kwargs.setdefault("rng", random.Random(7))
    sleeps = []
    kwargs.setdefault("sleep", sleeps.append)
    client = ServerClient(f"http://{host}:{port}", **kwargs)
    return client, sleeps


def script_responses(server, canned):
    """Make the first ``len(canned)`` requests answer from a script,
    then fall through to the real service."""
    service = server.service
    real = service.handle
    remaining = list(canned)

    def scripted(payload):
        if remaining:
            return remaining.pop(0)
        return real(payload)

    service.handle = scripted


def rejection(error_class, status=503, **extra):
    body = {
        "status": "error",
        "error_class": error_class,
        "message": f"scripted {error_class}",
        "exit_code": 5,
    }
    body.update(extra)
    return status, body


class TestRetryPolicy:
    def test_classifier(self):
        assert response_is_retryable(429, {}) is True
        for error_class in RETRYABLE_ERROR_CLASSES:
            assert response_is_retryable(
                503, {"error_class": error_class}
            )
        assert not response_is_retryable(
            503, {"error_class": "BudgetExceededError"}
        )
        assert not response_is_retryable(200, {})
        assert not response_is_retryable(400, {"error_class": "ModelError"})

    def test_retries_past_admission_rejection(self, server):
        script_responses(server, [rejection("AdmissionRejected", status=429)])
        client, sleeps = make_client(server, retries=3)
        status, body = client.query(REQUEST)
        assert status == 200
        assert body["status"] == "ok"
        assert len(sleeps) == 1
        assert client.resilience_stats["retries"] == 1

    def test_retries_past_draining_and_worker_crash(self, server):
        script_responses(
            server,
            [rejection("Draining"), rejection("WorkerCrashError")],
        )
        client, sleeps = make_client(server, retries=3)
        status, body = client.query(REQUEST)
        assert status == 200
        assert len(sleeps) == 2

    def test_budget_503_is_returned_not_retried(self, server):
        """A deadline expiry is this request's own definitive answer;
        retrying would burn another deadline for the same outcome."""
        client, sleeps = make_client(server, retries=3)
        status, body = client.query({**REQUEST, "deadline": 1e-9})
        assert status == 503
        assert body["error_class"] == "BudgetExceededError"
        assert sleeps == []
        assert server.service.stats.service_requests == 1

    def test_retries_exhausted_returns_last_response(self, server):
        script_responses(server, [rejection("Draining")] * 5)
        client, sleeps = make_client(server, retries=2)
        status, body = client.query(REQUEST)
        assert status == 503
        assert body["error_class"] == "Draining"
        assert len(sleeps) == 2

    def test_zero_retries_restores_fail_fast(self, server):
        script_responses(server, [rejection("Draining")])
        client, sleeps = make_client(server, retries=0)
        status, body = client.query(REQUEST)
        assert status == 503
        assert sleeps == []

    def test_retry_after_header_is_honored_up_to_cap(self, server):
        script_responses(
            server, [rejection("Draining", retry_after=3.0)]
        )
        client, sleeps = make_client(
            server, retries=1, backoff_base=0.001, backoff_cap=4.0
        )
        status, _ = client.query(REQUEST)
        assert status == 200
        assert sleeps == [3.0]  # server hint, under the cap

    def test_retry_after_capped_by_backoff_cap(self, server):
        script_responses(
            server, [rejection("Draining", retry_after=120.0)]
        )
        client, sleeps = make_client(
            server, retries=1, backoff_base=0.001, backoff_cap=2.0
        )
        status, _ = client.query(REQUEST)
        assert status == 200
        assert sleeps == [2.0]  # an interactive caller never waits 120s

    def test_backoff_grows_with_jitter(self, server):
        script_responses(server, [rejection("Draining")] * 4)
        client, sleeps = make_client(
            server, retries=4, backoff_base=1.0, backoff_cap=8.0
        )
        client.query(REQUEST)
        assert len(sleeps) == 4
        # Full jitter: each delay is uniform in [0, base * 2**attempt),
        # so the *ceilings* double while individual draws stay random.
        for attempt, delay in enumerate(sleeps):
            assert 0.0 <= delay <= min(2.0**attempt, 8.0)

    def test_connect_errors_retry_then_raise(self):
        sleeps = []
        dead = ServerClient(
            "http://127.0.0.1:1",
            timeout=0.2,
            retries=2,
            sleep=sleeps.append,
            rng=random.Random(7),
        )
        with pytest.raises(CheckingError, match="cannot reach"):
            dead.query(REQUEST)
        assert len(sleeps) == 2


class TestCircuitBreaker:
    def dead_client(self, **kwargs):
        kwargs.setdefault("timeout", 0.2)
        kwargs.setdefault("retries", 0)
        kwargs.setdefault("sleep", lambda _s: None)
        return ServerClient("http://127.0.0.1:1", **kwargs)

    def test_breaker_opens_after_threshold(self):
        client = self.dead_client(breaker_threshold=2)
        for _ in range(2):
            with pytest.raises(CheckingError, match="cannot reach"):
                client.query(REQUEST)
        assert client.breaker_open() is True
        assert client.resilience_stats["breaker_trips"] == 1
        # While open, requests fail fast with the same error contract
        # and no socket work.
        with pytest.raises(CheckingError, match="circuit breaker open"):
            client.query(REQUEST)
        assert client.resilience_stats["breaker_fast_fails"] == 1

    def test_breaker_half_opens_after_cooldown(self):
        import time

        client = self.dead_client(
            breaker_threshold=1, breaker_cooldown=0.05
        )
        with pytest.raises(CheckingError):
            client.query(REQUEST)
        assert client.breaker_open() is True
        time.sleep(0.06)
        assert client.breaker_open() is False  # next request probes

    def test_success_closes_breaker(self, server):
        host, port = server.server_address[:2]
        client = ServerClient(
            f"http://{host}:{port}",
            timeout=60.0,
            breaker_threshold=1,
            breaker_cooldown=0.01,
            retries=0,
            sleep=lambda _s: None,
        )
        # Force a failure record, then a real success must reset it.
        client._record_connect_failure()
        assert client._consecutive_failures == 1
        import time

        time.sleep(0.02)
        status, _ = client.query(REQUEST)
        assert status == 200
        assert client._consecutive_failures == 0
        assert client.breaker_open() is False

    def test_knob_validation(self):
        with pytest.raises(CheckingError):
            ServerClient("http://x", retries=-1)
        with pytest.raises(CheckingError):
            ServerClient("http://x", backoff_base=0.0)
        with pytest.raises(CheckingError):
            ServerClient("http://x", backoff_base=2.0, backoff_cap=1.0)
        with pytest.raises(CheckingError):
            ServerClient("http://x", breaker_threshold=0)
        with pytest.raises(CheckingError):
            ServerClient("http://x", breaker_cooldown=0.0)
