"""Tests for the HTTP transport, the client, and the CLI entry points.

The in-process tests bind a real threading server on an ephemeral port
and talk to it through :class:`repro.server.client.ServerClient` — the
same path ``mfcsl query`` takes.  The subprocess test drives the full
``mfcsl serve`` command the way the CI smoke job does.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.server.client import ServerClient
from repro.server.http import make_server
from repro.server.service import ServerConfig

FORMULA = "EP[<0.3](not_infected U[0,1] infected)"

REQUEST = {
    "command": "check",
    "model": "virus1",
    "occupancy": [0.8, 0.15, 0.05],
    "formula": FORMULA,
}


@pytest.fixture
def server():
    srv = make_server(port=0, config=ServerConfig())
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture
def client(server):
    host, port = server.server_address[:2]
    return ServerClient(f"http://{host}:{port}", timeout=60.0)


class TestEndpoints:
    def test_health(self, client):
        assert client.health() is True

    def test_query_cold_then_warm(self, client):
        s1, r1 = client.query(REQUEST)
        s2, r2 = client.query(REQUEST)
        assert s1 == s2 == 200
        assert r1["cache"]["hit"] is False
        assert r2["cache"]["hit"] is True
        assert r2["verdict"] == r1["verdict"]

    def test_stats_endpoint(self, client):
        client.query(REQUEST)
        client.query(REQUEST)
        stats = client.stats()
        assert stats["service"]["service_requests"] == 2
        assert stats["service"]["service_cache_hits"] == 1

    def test_error_statuses_carry_json_bodies(self, client):
        status, body = client.query({"command": "bogus"})
        assert status == 400
        assert body["status"] == "error"
        assert body["exit_code"] == 2
        status, body = client.query({**REQUEST, "deadline": 1e-9})
        assert status == 503
        assert body["error_class"] == "BudgetExceededError"
        assert "progress" in body

    def test_unknown_path_is_404(self, client):
        status, body = client._request("/nope")
        assert status == 404
        assert body["error_class"] == "NotFound"

    def test_unreachable_server_raises_checking_error(self):
        from repro.exceptions import CheckingError

        dead = ServerClient("http://127.0.0.1:1", timeout=0.5)
        assert dead.health() is False
        with pytest.raises(CheckingError, match="cannot reach"):
            dead.query(REQUEST)

    def test_batch_endpoint(self, client):
        status, body = client.query_batch(
            [REQUEST, {"command": "bogus"}, dict(REQUEST)]
        )
        assert status == 200
        assert body["status"] == "ok"
        assert body["items"] == 3
        assert body["errors"] == 1
        assert body["exit_codes"][0] == 0
        assert body["exit_codes"][1] == 2
        assert body["exit_codes"][2] == 0
        # The duplicate item was answered from the response cache.
        assert body["cache"]["hits"] == 1

    def test_batch_envelope_error_is_400(self, client):
        status, body = client._request("/batch", {"queries": []})
        assert status == 400
        assert body["status"] == "error"


class TestKeepAlive:
    """The client holds one persistent HTTP/1.1 connection."""

    def test_connection_is_reused(self, client):
        client.query(REQUEST)
        conn = client._conn
        assert conn is not None
        client.query(REQUEST)
        client.stats()
        assert client._conn is conn  # same socket across requests

    def test_stale_connection_is_retried(self, client):
        status, _ = client.query(REQUEST)
        assert status == 200
        # Kill the cached socket behind the client's back; the next
        # request must transparently reconnect.
        client._conn.sock.close()
        status, body = client.query(REQUEST)
        assert status == 200
        assert body["cache"]["hit"] is True

    def test_close_then_reuse(self, client):
        client.query(REQUEST)
        client.close()
        assert client._conn is None
        status, _ = client.query(REQUEST)
        assert status == 200

    def test_context_manager(self, server):
        host, port = server.server_address[:2]
        with ServerClient(f"http://{host}:{port}", timeout=60.0) as c:
            assert c.health() is True
        assert c._conn is None


class TestServeSubprocess:
    """End-to-end smoke of ``mfcsl serve`` — the CI server-smoke job."""

    @pytest.fixture
    def serve_process(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                str(tmp_path / "spill"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            url = line.strip().split()[-1]
            yield url
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_serve_and_query_end_to_end(self, serve_process):
        url = serve_process
        client = ServerClient(url, timeout=120.0)
        deadline = time.monotonic() + 10.0
        while not client.health():
            assert time.monotonic() < deadline, "server never came up"
            time.sleep(0.05)

        s1, cold = client.query(REQUEST)
        s2, warm = client.query(REQUEST)
        assert s1 == s2 == 200
        assert cold["cache"]["hit"] is False
        assert warm["cache"]["hit"] is True
        assert warm["verdict"] == cold["verdict"]

        # A not-yet-cached formula: a cached answer would (correctly)
        # be served regardless of the deadline.
        status, body = client.query(
            {
                **REQUEST,
                "formula": "EP[<0.3](not_infected U[0,2] infected)",
                "deadline": 1e-9,
            }
        )
        assert status == 503
        assert body["exit_code"] == 5

        stats = client.stats()
        assert stats["service"]["service_cache_hits"] >= 1


class TestQueryCommand:
    """The ``mfcsl query`` subcommand against an in-process server."""

    def test_query_check_exit_code_and_output(self, server, capsys):
        from repro.cli import main

        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        code = main(
            [
                "query",
                "--url",
                url,
                "--occupancy",
                "0.8,0.15,0.05",
                FORMULA,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "SATISFIED" in out
        assert "cache: hit=False" in out
        code = main(
            [
                "query",
                "--url",
                url,
                "--occupancy",
                "0.8,0.15,0.05",
                FORMULA,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cache: hit=True" in out

    def test_query_value_and_csat(self, server, capsys):
        from repro.cli import main

        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        code = main(
            [
                "query",
                "--url",
                url,
                "--command",
                "value",
                "--occupancy",
                "0.8,0.15,0.05",
                FORMULA,
            ]
        )
        assert code == 0
        assert "0.2338" in capsys.readouterr().out
        code = main(
            [
                "query",
                "--url",
                url,
                "--command",
                "csat",
                "--theta",
                "5",
                "--occupancy",
                "0.8,0.15,0.05",
                FORMULA,
            ]
        )
        assert code == 0
        assert "[0.000000, 5.000000]" in capsys.readouterr().out

    def test_query_deadline_error_to_stderr(self, server, capsys):
        from repro.cli import main

        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        code = main(
            [
                "query",
                "--url",
                url,
                "--deadline",
                "1e-9",
                "--occupancy",
                "0.8,0.15,0.05",
                "EP[<0.3](not_infected U[0,2] infected)",
            ]
        )
        captured = capsys.readouterr()
        assert code == 5
        assert "error:" in captured.err
        assert "progress:" in captured.err

    def test_query_server_stats(self, server, capsys):
        from repro.cli import main

        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        code = main(["query", "--url", url, "--server-stats"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"

    def test_query_batch_file(self, server, capsys, tmp_path):
        from repro.cli import main

        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        batch = tmp_path / "batch.json"
        batch.write_text(
            json.dumps(
                [
                    REQUEST,
                    {**REQUEST, "command": "value"},
                    {"command": "bogus"},
                ]
            )
        )
        code = main(["query", "--url", url, "--batch", str(batch)])
        out = capsys.readouterr().out
        # Exit code is the worst per-item code (2: the malformed item).
        assert code == 2
        assert "[0] exit=0 SATISFIED" in out
        assert "[1] exit=0 0.2338" in out
        assert "[2] exit=2 ERROR" in out
        assert "batch: items=3 errors=1" in out

    def test_query_batch_bad_file(self, server, capsys, tmp_path):
        from repro.cli import main

        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        bad = tmp_path / "bad.json"
        bad.write_text("{\"not\": \"a batch\"}")
        code = main(["query", "--url", url, "--batch", str(bad)])
        assert code == 4
        assert "batch file" in capsys.readouterr().err

    def test_query_with_option_overrides(self, server, capsys):
        from repro.cli import main

        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        code = main(
            [
                "query",
                "--url",
                url,
                "--option",
                "curve_method=cells",
                "--option",
                "grid_points=33",
                "--occupancy",
                "0.8,0.15,0.05",
                FORMULA,
            ]
        )
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out


class TestTransportRobustness:
    """Disconnects, idle timeouts and graceful drains at the HTTP layer."""

    def test_send_json_swallows_broken_pipe(self):
        """A client that hangs up mid-response must not unwind the
        handler thread; the event is counted instead."""
        from types import SimpleNamespace

        from repro.server.http import _Handler
        from repro.server.service import CheckingService

        service = CheckingService(ServerConfig())
        try:
            handler = _Handler.__new__(_Handler)
            handler.server = SimpleNamespace(service=service, verbose=False)
            handler.request_version = "HTTP/1.1"
            handler.requestline = "POST /query HTTP/1.1"
            handler.client_address = ("127.0.0.1", 1)
            handler.close_connection = False

            class GoneClient:
                def write(self, data):
                    raise BrokenPipeError("client hung up")

                def flush(self):
                    pass

            handler.wfile = GoneClient()
            handler._send_json(200, {"status": "ok"})  # must not raise
            assert handler.close_connection is True
            assert service.stats.service_client_disconnects == 1
        finally:
            service.close()

    def test_idle_keepalive_connection_times_out(self):
        """An idle keep-alive socket is closed after connection_timeout
        instead of pinning a daemon handler thread forever."""
        import socket

        srv = make_server(
            port=0, config=ServerConfig(connection_timeout=0.3)
        )
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = srv.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.settimeout(10)
                # Send nothing: the server must hang up on us.
                assert sock.recv(1024) == b""
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if srv.service.stats.service_connection_timeouts >= 1:
                    break
                time.sleep(0.02)
            assert srv.service.stats.service_connection_timeouts == 1
        finally:
            srv.shutdown()
            srv.server_close()

    def test_connection_survives_timeout_of_other_client(self):
        """One client idling out must not disturb another's keep-alive
        connection."""
        import socket

        srv = make_server(
            port=0, config=ServerConfig(connection_timeout=0.5)
        )
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = srv.server_address[:2]
            busy = ServerClient(f"http://{host}:{port}", timeout=60.0)
            assert busy.query(REQUEST)[0] == 200
            with socket.create_connection((host, port), timeout=10) as idle:
                idle.settimeout(10)
                assert idle.recv(1024) == b""  # idler reaped...
            assert busy.query(REQUEST)[0] == 200  # ...worker unaffected
            assert busy.query(REQUEST)[1]["cache"]["hit"] is True
        finally:
            srv.shutdown()
            srv.server_close()

    def test_drain_races_in_flight_request(self, monkeypatch):
        """drain_and_shutdown must let an already-accepted request
        finish (and flush its response) while new requests during the
        drain get a clean 503 + Retry-After."""
        from repro.checking.global_ import MFModelChecker

        real = MFModelChecker.check_detailed

        def slow(self, formula, occupancy, ctx=None):
            time.sleep(1.0)
            return real(self, formula, occupancy, ctx=ctx)

        monkeypatch.setattr(MFModelChecker, "check_detailed", slow)

        srv = make_server(
            port=0, config=ServerConfig(drain_deadline=30.0)
        )
        serve_thread = threading.Thread(
            target=srv.serve_forever, daemon=True
        )
        serve_thread.start()
        host, port = srv.server_address[:2]
        url = f"http://{host}:{port}"
        results = {}

        def inflight():
            with ServerClient(url, timeout=60.0) as c:
                results["inflight"] = c.query(REQUEST)

        worker = threading.Thread(target=inflight)
        worker.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if srv.service.stats.service_requests >= 1:
                break
            time.sleep(0.01)

        drain_done = {}

        def drain():
            drain_done["clean"] = srv.drain_and_shutdown()

        drainer = threading.Thread(target=drain)
        drainer.start()
        time.sleep(0.1)  # drain flag is up, in-flight query still runs

        with ServerClient(url, timeout=60.0, retries=0) as late:
            try:
                status, body = late.query(REQUEST)
            except Exception:
                # Acceptable only if the drain already completed and
                # the socket is gone; otherwise the 503 must be clean.
                status, body = None, None
        worker.join(timeout=60)
        drainer.join(timeout=60)
        assert not worker.is_alive() and not drainer.is_alive()

        status_inflight, body_inflight = results["inflight"]
        assert status_inflight == 200
        assert body_inflight["status"] == "ok"
        assert drain_done["clean"] is True
        if status is not None:
            assert status == 503
            assert body["error_class"] == "Draining"
        srv.server_close()

    def test_shutdown_still_stops_immediately(self):
        """Plain shutdown() keeps its historical contract: accept loop
        stops and the service closes."""
        srv = make_server(port=0, config=ServerConfig())
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        srv.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert srv.service.state == "closed"
        srv.server_close()
