"""Tests for the transport-free checking service.

Everything here calls :meth:`CheckingService.handle` directly — no
sockets — which is exactly how the HTTP layer calls it.  The threaded
tests exercise the coalescing and admission-control paths for real by
slowing the underlying computation down with a monkeypatched checker.
"""

import threading
import time

import pytest

from repro.checking.global_ import MFModelChecker
from repro.exceptions import EXIT_BUDGET_EXCEEDED
from repro.server.service import (
    HTTP_STATUS_REJECTED,
    CheckingService,
    ServerConfig,
)

FORMULA = "EP[<0.3](not_infected U[0,1] infected)"


def check_request(**overrides):
    payload = {
        "command": "check",
        "model": "virus1",
        "occupancy": [0.8, 0.15, 0.05],
        "formula": FORMULA,
    }
    payload.update(overrides)
    return payload


@pytest.fixture
def service():
    svc = CheckingService(ServerConfig())
    yield svc
    svc.close()


class TestValidation:
    """Malformed requests earn a 400 with the documented error shape."""

    @pytest.mark.parametrize(
        "payload",
        [
            "not an object",
            None,
            42,
            {},
            {"command": "launch"},
            check_request(formula=""),
            check_request(formula=7),
            check_request(occupancy=[]),
            check_request(occupancy="0.8,0.2"),
            check_request(occupancy=[0.8, "x", 0.05]),
            check_request(theta=5.0),  # theta only valid for csat
            {**check_request(), "command": "csat", "theta": -1.0},
            check_request(model="no-such-model"),
            check_request(model_document={"format": "wrong"}),
            check_request(options={"no_such_option": 1}),
            check_request(options="fast"),
            check_request(options={"grid_points": 1}),
            check_request(deadline=-2.0),
            check_request(deadline=True),
            check_request(max_solves=0),
            check_request(max_solves=2.5),
        ],
    )
    def test_bad_request_is_400(self, service, payload):
        status, body = service.handle(payload)
        assert status == 400
        assert body["status"] == "error"
        assert body["exit_code"] in (2, 3)
        assert body["message"]

    def test_occupancy_must_sum_to_one(self, service):
        status, body = service.handle(
            check_request(occupancy=[0.5, 0.1, 0.05])
        )
        assert status == 400
        assert body["status"] == "error"


class TestColdWarm:
    def test_warm_identical_request_is_a_cache_hit(self, service):
        s1, r1 = service.handle(check_request())
        s2, r2 = service.handle(check_request())
        assert s1 == s2 == 200
        assert r1["cache"]["hit"] is False
        assert r2["cache"]["hit"] is True
        # Identical verdict, byte for byte.
        assert r2["verdict"] == r1["verdict"]
        assert r2["exit_code"] == r1["exit_code"]
        assert service.stats.service_cache_hits == 1
        assert service.stats.service_cache_misses == 1

    def test_verdict_shape_and_exit_codes(self, service):
        _, sat = service.handle(check_request())
        assert sat["verdict"]["holds"] is True
        assert sat["exit_code"] == 0
        _, unsat = service.handle(
            check_request(formula="E[>0.8](infected)")
        )
        assert unsat["verdict"]["holds"] is False
        assert unsat["exit_code"] == 1

    def test_value_and_csat_commands(self, service):
        s, r = service.handle(check_request(command="value"))
        assert s == 200
        assert r["value"] == pytest.approx(0.2338842135, abs=1e-6)
        s, r = service.handle(check_request(command="csat", theta=5.0))
        assert s == 200
        assert r["theta"] == 5.0
        assert r["intervals"] == [[0.0, 5.0]]

    def test_distinct_occupancies_share_the_entry(self, service):
        service.handle(check_request())
        service.handle(check_request(occupancy=[0.7, 0.2, 0.1]))
        assert service.stats.service_cache_misses == 1
        assert service.stats.service_context_reuses == 0

    def test_deadline_only_difference_shares_the_entry(self, service):
        """Execution limits are excluded from the options signature, so
        a deadline-carrying request warms the same entry."""
        service.handle(check_request())
        s, r = service.handle(check_request(deadline=60.0))
        assert s == 200
        # Same answer, same cache entry — the response cache also
        # ignores execution limits.
        assert r["cache"]["hit"] is True
        assert service.stats.service_cache_misses == 1

    def test_answer_shaping_options_split_entries(self, service):
        service.handle(check_request())
        service.handle(check_request(options={"curve_method": "cells"}))
        assert service.stats.service_cache_misses == 2

    def test_occupancy_rounding_noise_shares_the_context(self, service):
        service.handle(check_request())
        s, r = service.handle(
            check_request(occupancy=[0.8 + 1e-14, 0.15, 0.05])
        )
        assert s == 200
        assert r["cache"]["hit"] is True


class TestBudgets:
    def test_tiny_deadline_rejected_with_progress(self, service):
        status, body = service.handle(check_request(deadline=1e-9))
        assert status == 503
        assert body["status"] == "error"
        assert body["error_class"] == "BudgetExceededError"
        assert body["exit_code"] == EXIT_BUDGET_EXCEEDED
        assert body["progress"]["deadline_seconds"] == 1e-9
        assert "elapsed_seconds" in body["progress"]

    def test_budget_rearm_after_deadline_failure(self, service):
        """Regression: the entry budget must re-anchor per request — a
        failed tight-deadline request must not poison the entry for the
        next, unhurried one."""
        status, _ = service.handle(check_request(deadline=1e-9))
        assert status == 503
        status, body = service.handle(check_request())
        assert status == 200
        assert body["status"] == "ok"
        assert body["verdict"]["holds"] is True

    def test_budget_errors_are_not_cached(self, service):
        service.handle(check_request(deadline=1e-9))
        status, body = service.handle(check_request())
        assert status == 200
        assert body["cache"]["hit"] is False

    def test_default_deadline_applies_when_unset(self):
        svc = CheckingService(ServerConfig(default_deadline=1e-9))
        try:
            status, body = svc.handle(check_request())
            assert status == 503
            assert body["error_class"] == "BudgetExceededError"
            # An explicit null deadline opts out of the default.
            status, body = svc.handle(check_request(deadline=None))
            assert status == 200
        finally:
            svc.close()

    def test_max_solves_enforced(self, service):
        # csat propagates the until window across [0, theta] — far more
        # than one charged solve.
        status, body = service.handle(
            check_request(command="csat", theta=5.0, max_solves=1)
        )
        assert status == 503
        assert body["error_class"] == "BudgetExceededError"
        assert "cap 1" in body["message"]


class TestCoalescing:
    def test_identical_concurrent_queries_compute_once(
        self, service, monkeypatch
    ):
        """Satellite smoke test: N threads hammer one entry; exactly one
        computation runs, everyone gets the identical verdict, and the
        counters are not torn."""
        calls = []
        original = MFModelChecker.check_detailed

        def slow_check(self, formula, occupancy, ctx=None):
            calls.append(threading.get_ident())
            time.sleep(0.3)
            return original(self, formula, occupancy, ctx=ctx)

        monkeypatch.setattr(MFModelChecker, "check_detailed", slow_check)

        n = 8
        barrier = threading.Barrier(n)
        results = [None] * n

        def worker(i):
            barrier.wait()
            results[i] = service.handle(check_request())

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert all(not t.is_alive() for t in threads)

        assert len(calls) == 1  # coalesced onto one computation
        statuses = {s for s, _ in results}
        verdicts = [r["verdict"] for _, r in results]
        assert statuses == {200}
        assert all(v == verdicts[0] for v in verdicts)

        stats = service.stats
        assert stats.service_requests == n
        # Everyone besides the computer was either coalesced onto the
        # in-flight computation or (if it arrived after publication)
        # served from the response cache; nothing was lost or torn.
        assert stats.service_coalesced + stats.service_cache_hits == n - 1
        assert stats.service_cache_misses == 1
        coalesced = [
            r for _, r in results if r["cache"].get("coalesced")
        ]
        assert len(coalesced) == stats.service_coalesced

    def test_different_limits_do_not_coalesce(self, service, monkeypatch):
        """A no-deadline request must never inherit a tight-deadline
        peer's budget error: the in-flight key includes the limits."""
        original = MFModelChecker.check_detailed

        def slow_check(self, formula, occupancy, ctx=None):
            time.sleep(0.2)
            return original(self, formula, occupancy, ctx=ctx)

        monkeypatch.setattr(MFModelChecker, "check_detailed", slow_check)

        results = {}

        def run(name, payload):
            results[name] = service.handle(payload)

        t1 = threading.Thread(
            target=run, args=("tight", check_request(deadline=1e-9))
        )
        t2 = threading.Thread(target=run, args=("free", check_request()))
        t1.start()
        time.sleep(0.05)  # ensure the tight request is in flight first
        t2.start()
        t1.join(timeout=30)
        t2.join(timeout=30)

        assert results["tight"][0] == 503
        assert results["free"][0] == 200
        assert results["free"][1]["verdict"]["holds"] is True


class TestAdmission:
    def test_saturated_pool_rejects_with_429(self, monkeypatch):
        svc = CheckingService(
            ServerConfig(max_concurrent=1, queue_timeout=0.05)
        )
        original = MFModelChecker.check_detailed

        def slow_check(self, formula, occupancy, ctx=None):
            time.sleep(0.6)
            return original(self, formula, occupancy, ctx=ctx)

        monkeypatch.setattr(MFModelChecker, "check_detailed", slow_check)

        results = {}

        def run(name, payload):
            results[name] = svc.handle(payload)

        try:
            # Two *different* formulas: no coalescing, both need a slot.
            t1 = threading.Thread(
                target=run, args=("a", check_request())
            )
            t2 = threading.Thread(
                target=run,
                args=("b", check_request(formula="E[>0.8](infected)")),
            )
            t1.start()
            time.sleep(0.1)
            t2.start()
            t1.join(timeout=30)
            t2.join(timeout=30)

            assert results["a"][0] == 200
            status, body = results["b"]
            assert status == HTTP_STATUS_REJECTED == 429
            assert body["error_class"] == "AdmissionRejected"
            assert body["exit_code"] == EXIT_BUDGET_EXCEEDED
            assert "retry" in body["message"]
            assert svc.stats.service_rejections == 1
        finally:
            svc.close()


class TestEvictionAndSpill:
    def test_lru_eviction_beyond_max_entries(self, tmp_path):
        svc = CheckingService(
            ServerConfig(max_entries=1, cache_dir=str(tmp_path))
        )
        try:
            svc.handle(check_request(model="virus1"))
            svc.handle(check_request(model="virus2"))
            assert svc.stats.service_cache_evictions == 1
            assert svc.stats.service_spill_saves == 1
            assert len(list(tmp_path.glob("entry-*.pkl"))) == 1
        finally:
            svc.close()

    def test_eviction_without_cache_dir_just_drops(self):
        svc = CheckingService(ServerConfig(max_entries=1))
        try:
            svc.handle(check_request(model="virus1"))
            svc.handle(check_request(model="virus2"))
            assert svc.stats.service_cache_evictions == 1
            assert svc.stats.service_spill_saves == 0
        finally:
            svc.close()

    def test_spilled_entry_revives_across_service_instances(self, tmp_path):
        """Warm state survives a restart: a new service process finds
        the spilled entry and serves the response without recomputing."""
        svc1 = CheckingService(ServerConfig(cache_dir=str(tmp_path)))
        _, cold = svc1.handle(check_request())
        svc1.close()  # spills every warm entry
        assert svc1.stats.service_spill_saves == 1

        svc2 = CheckingService(ServerConfig(cache_dir=str(tmp_path)))
        try:
            status, warm = svc2.handle(check_request())
            assert status == 200
            assert svc2.stats.service_spill_loads == 1
            assert warm["cache"]["hit"] is True
            assert warm["verdict"] == cold["verdict"]
        finally:
            svc2.close()

    def test_closed_service_refuses_requests(self, tmp_path):
        svc = CheckingService(ServerConfig(cache_dir=str(tmp_path)))
        svc.close()
        status, body = svc.handle(check_request())
        assert status == 400
        assert "shut down" in body["message"]


class TestStatsPayload:
    def test_stats_payload_shape(self, service):
        service.handle(check_request())
        service.handle(check_request())
        payload = service.stats_payload()
        assert payload["status"] == "ok"
        assert payload["service"]["service_requests"] == 2
        assert payload["service"]["service_cache_hits"] == 1
        assert len(payload["entries"]) == 1
        entry = payload["entries"][0]
        assert entry["model_hash"].startswith("sha256:")
        assert entry["contexts"] == 1
        assert entry["responses"] >= 1
        assert entry["stats"]["solve_ivp_calls"] > 0
        assert payload["config"]["max_entries"] == 32

    def test_stats_delta_reported_on_computes_only(self, service):
        _, cold = service.handle(check_request())
        _, warm = service.handle(check_request())
        assert cold["stats_delta"].get("solve_ivp_calls", 0) > 0
        assert warm["stats_delta"] == {}


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_entries": 0},
            {"max_cache_mb": 0},
            {"max_contexts_per_entry": 0},
            {"max_responses_per_entry": 0},
            {"default_deadline": -1.0},
            {"max_concurrent": 0},
            {"queue_timeout": -1.0},
            {"coalesce_timeout": 0.0},
        ],
    )
    def test_bad_config_raises(self, kwargs):
        from repro.exceptions import ModelError

        with pytest.raises(ModelError):
            ServerConfig(**kwargs)
