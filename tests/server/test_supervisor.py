"""Unit tests for the query supervisor (isolation, crashes, breaker).

These exercise :class:`repro.server.supervisor.QuerySupervisor` in
isolation with plain closures — no checking service, no HTTP.  The
full-stack fault-injection scenarios live in ``test_chaos.py``.
"""

import os
import signal
import time

import pytest

from repro.exceptions import (
    EXIT_BUDGET_EXCEEDED,
    BudgetExceededError,
    ModelError,
    ParseError,
    WorkerCrashError,
    exit_code_for,
)
from repro.instrumentation import EvalStats
from repro.parallel import fork_available
from repro.server.supervisor import QuerySupervisor, WorkerCrash

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)


def _suicide():
    os.kill(os.getpid(), signal.SIGKILL)


class TestModes:
    def test_none_mode_runs_inline(self):
        sup = QuerySupervisor("none")
        value, isolated = sup.run(lambda: 42)
        assert value == 42
        assert isolated is False

    def test_thread_mode_runs_on_worker_thread(self):
        sup = QuerySupervisor("thread")
        value, isolated = sup.run(lambda: 42)
        assert value == 42
        assert isolated is False  # same process: no state shipping needed

    @needs_fork
    def test_process_mode_runs_in_worker(self):
        sup = QuerySupervisor("process")
        value, isolated = sup.run(lambda: 42)
        assert value == 42
        assert isolated is True

    @needs_fork
    def test_worker_inherits_parent_state_and_ships_result(self):
        # The whole point of fork isolation: closures over unpicklable
        # parent state run fine; only the result crosses the pipe.
        unpicklable = lambda x: x * 2  # noqa: E731 - deliberately a lambda
        sup = QuerySupervisor("process")
        value, isolated = sup.run(lambda: unpicklable(21))
        assert value == 42
        assert isolated is True

    def test_invalid_mode_rejected(self):
        with pytest.raises(ModelError, match="isolate"):
            QuerySupervisor("container")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"worker_grace": 0.0},
            {"default_timeout": -1.0},
            {"crash_loop_threshold": 0},
            {"backoff_base": 0.0},
            {"backoff_base": 2.0, "backoff_cap": 1.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ModelError):
            QuerySupervisor("none", **kwargs)


class TestExceptionTransfer:
    """Library errors cross the pipe as themselves, with their state."""

    @needs_fork
    def test_library_error_propagates_unchanged(self):
        sup = QuerySupervisor("process")

        def raises():
            raise ParseError("bad token", position=7)

        with pytest.raises(ParseError, match="bad token") as excinfo:
            sup.run(raises)
        assert excinfo.value.position == 7

    @needs_fork
    def test_budget_error_keeps_progress(self):
        sup = QuerySupervisor("process")

        def raises():
            raise BudgetExceededError("out of time", {"solves": 3})

        with pytest.raises(BudgetExceededError) as excinfo:
            sup.run(raises)
        assert excinfo.value.progress == {"solves": 3}

    @needs_fork
    def test_foreign_exception_is_wrapped(self):
        sup = QuerySupervisor("process")

        def raises():
            raise ValueError("numpy went sideways")

        with pytest.raises(Exception, match="numpy went sideways"):
            sup.run(raises)

    def test_thread_mode_exceptions_propagate(self):
        sup = QuerySupervisor("thread")
        with pytest.raises(ParseError, match="nope"):
            sup.run(_raise_parse_error)


def _raise_parse_error():
    raise ParseError("nope")


@needs_fork
class TestCrashHandling:
    def fast_supervisor(self, **kwargs):
        kwargs.setdefault("backoff_base", 0.05)
        kwargs.setdefault("backoff_cap", 0.2)
        kwargs.setdefault("stats", EvalStats())
        return QuerySupervisor("process", **kwargs)

    def test_killed_worker_raises_worker_crash(self):
        sup = self.fast_supervisor()
        with pytest.raises(WorkerCrashError) as excinfo:
            sup.run(_suicide)
        assert excinfo.value.exitcode == -signal.SIGKILL
        assert "SIGKILL" in str(excinfo.value)
        assert sup.stats.service_worker_crashes == 1
        assert len(sup.crashes) == 1
        assert isinstance(sup.crashes[0], WorkerCrash)

    def test_crash_maps_to_exit_code_5(self):
        sup = self.fast_supervisor()
        with pytest.raises(WorkerCrashError) as excinfo:
            sup.run(_suicide)
        assert exit_code_for(excinfo.value) == EXIT_BUDGET_EXCEEDED

    def test_crash_noted_in_trace(self):
        notes = []

        class Trace:
            def note(self, message):
                notes.append(message)

        sup = self.fast_supervisor()
        with pytest.raises(WorkerCrashError):
            sup.run(_suicide, trace=Trace())
        assert any("WorkerCrash" in n for n in notes)

    def test_crash_degrades_then_recovers(self):
        sup = self.fast_supervisor()
        with pytest.raises(WorkerCrashError):
            sup.run(_suicide)
        # Inside the cool-down window the supervisor runs in-process
        # instead of forking into a crash loop...
        assert sup.degraded() is True
        value, isolated = sup.run(lambda: "survived")
        assert (value, isolated) == ("survived", False)
        # ...and once the window elapses, workers fork again (restart).
        time.sleep(0.08)
        value, isolated = sup.run(lambda: "forked", deadline=None)
        assert (value, isolated) == ("forked", True)
        assert sup.stats.service_worker_restarts == 1

    def test_crash_loop_breaker_trips(self):
        sup = self.fast_supervisor(crash_loop_threshold=2)
        for _ in range(2):
            with pytest.raises(WorkerCrashError):
                sup.run(_suicide)
            time.sleep(0.25)  # let each cool-down expire to fork again
        assert sup.stats.service_crash_breaker_trips == 1
        assert sup.stats.service_worker_crashes == 2

    def test_worker_exceeding_allowance_is_reaped(self):
        sup = self.fast_supervisor(worker_grace=0.2)
        with pytest.raises(WorkerCrashError, match="wall-clock"):
            sup.run(lambda: time.sleep(30), deadline=0.1)

    def test_success_resets_consecutive_crashes(self):
        sup = self.fast_supervisor(crash_loop_threshold=3)
        with pytest.raises(WorkerCrashError):
            sup.run(_suicide)
        time.sleep(0.08)
        sup.run(lambda: 1)
        assert sup.snapshot()["consecutive_crashes"] == 0

    def test_snapshot_shape(self):
        sup = self.fast_supervisor()
        snap = sup.snapshot()
        assert snap["mode"] == "process"
        assert snap["degraded"] is False
        assert snap["active_workers"] == 0
        assert snap["recent_crashes"] == []


class TestThreadStalls:
    def test_stalled_thread_raises_worker_crash(self):
        sup = QuerySupervisor(
            "thread", default_timeout=0.1, backoff_base=0.05, backoff_cap=0.2
        )
        with pytest.raises(WorkerCrashError, match="thread"):
            sup.run(lambda: time.sleep(30))

    def test_thread_stall_counts_as_crash(self):
        stats = EvalStats()
        sup = QuerySupervisor(
            "thread",
            default_timeout=0.1,
            backoff_base=0.05,
            backoff_cap=0.2,
            stats=stats,
        )
        with pytest.raises(WorkerCrashError):
            sup.run(lambda: time.sleep(30))
        assert stats.service_worker_crashes == 1
        assert stats.service_supervised == 1
