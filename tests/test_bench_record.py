"""Benchmark history persistence and regression flagging.

:mod:`benchmarks.record` is plain library code (the benches only call
it), so its contract — append-only history, corruption tolerance, and
the median-based regression flags that the sparse benchmark family
prints — is tested here in the tier-1 suite.
"""

import json

import numpy as np
import pytest

from benchmarks.record import (
    FAULT_COUNTERS,
    MAX_RECORDS_PER_NAME,
    check_all_regressions,
    check_fault_counters,
    check_regressions,
    record_wall_times,
)


class TestRecordWallTimes:
    def test_appends_records_newest_last(self, tmp_path):
        path = tmp_path / "hist.json"
        record_wall_times("bench", {"fast": 0.1}, path=path)
        record_wall_times("bench", {"fast": 0.2}, path=path)
        history = json.loads(path.read_text())
        times = [r["wall_times_s"]["fast"] for r in history["bench"]]
        assert times == [0.1, 0.2]

    def test_extra_values_coerced_to_json(self, tmp_path):
        path = tmp_path / "hist.json"
        record = record_wall_times(
            "bench",
            {"t": np.float64(0.5)},
            extra={"dev": np.float64(1e-12), "ks": np.arange(3)},
            path=path,
        )
        assert record["dev"] == 1e-12
        assert record["ks"] == [0, 1, 2]
        json.loads(path.read_text())  # round-trips

    def test_corrupt_history_is_reset_not_fatal(self, tmp_path):
        path = tmp_path / "hist.json"
        path.write_text("{not json")
        record_wall_times("bench", {"t": 1.0}, path=path)
        history = json.loads(path.read_text())
        assert len(history["bench"]) == 1

    def test_series_capped(self, tmp_path):
        path = tmp_path / "hist.json"
        for i in range(MAX_RECORDS_PER_NAME + 5):
            record_wall_times("bench", {"t": float(i)}, path=path)
        history = json.loads(path.read_text())
        series = history["bench"]
        assert len(series) == MAX_RECORDS_PER_NAME
        # Oldest dropped, newest kept.
        assert series[-1]["wall_times_s"]["t"] == MAX_RECORDS_PER_NAME + 4


class TestCheckRegressions:
    def _seed(self, path, values, label="sparse", name="bench"):
        for v in values:
            record_wall_times(name, {label: v}, path=path)

    def test_missing_file_is_silent(self, tmp_path):
        assert check_regressions("bench", path=tmp_path / "nope.json") == []

    def test_corrupt_file_is_silent(self, tmp_path):
        path = tmp_path / "hist.json"
        path.write_text("{not json")
        assert check_regressions("bench", path=path) == []

    def test_short_history_not_flagged(self, tmp_path):
        path = tmp_path / "hist.json"
        self._seed(path, [0.1, 0.1, 9.9])  # only 2 prior records
        assert check_regressions("bench", path=path) == []

    def test_steady_series_not_flagged(self, tmp_path):
        path = tmp_path / "hist.json"
        self._seed(path, [0.10, 0.11, 0.09, 0.10, 0.12])
        assert check_regressions("bench", path=path) == []

    def test_regression_flagged_against_median(self, tmp_path):
        path = tmp_path / "hist.json"
        self._seed(path, [0.10, 0.11, 0.09, 0.10, 0.25])
        flags = check_regressions("bench", path=path)
        assert len(flags) == 1
        assert "bench[sparse]" in flags[0]
        assert "0.250" in flags[0]

    def test_one_old_outlier_does_not_skew_median(self, tmp_path):
        path = tmp_path / "hist.json"
        # A single historic spike must not raise the baseline.
        self._seed(path, [0.10, 5.0, 0.10, 0.11, 0.12])
        assert check_regressions("bench", path=path) == []

    def test_ratio_boundary(self, tmp_path):
        below = tmp_path / "below.json"
        self._seed(below, [0.10, 0.10, 0.10, 0.149])
        assert check_regressions("bench", path=below) == []
        above = tmp_path / "above.json"
        self._seed(above, [0.10, 0.10, 0.10, 0.151])
        assert len(check_regressions("bench", path=above)) == 1

    def test_new_label_without_history_not_flagged(self, tmp_path):
        path = tmp_path / "hist.json"
        self._seed(path, [0.1, 0.1, 0.1])
        record_wall_times("bench", {"dense": 9.9}, path=path)
        assert check_regressions("bench", path=path) == []

    def test_only_regressed_label_flagged(self, tmp_path):
        path = tmp_path / "hist.json"
        for v in (0.1, 0.1, 0.1):
            record_wall_times(
                "bench", {"sparse": v, "dense": 1.0}, path=path
            )
        record_wall_times(
            "bench", {"sparse": 0.5, "dense": 1.0}, path=path
        )
        flags = check_regressions("bench", path=path)
        assert len(flags) == 1
        assert "bench[sparse]" in flags[0]

    def test_custom_ratio(self, tmp_path):
        path = tmp_path / "hist.json"
        self._seed(path, [0.10, 0.10, 0.10, 0.13])
        assert check_regressions("bench", path=path) == []
        assert check_regressions("bench", path=path, ratio=1.2) != []


class TestCheckFaultCounters:
    """Server benches record ``service_*`` stats; faults flag strictly."""

    def test_missing_file_is_silent(self, tmp_path):
        assert (
            check_fault_counters("bench", path=tmp_path / "nope.json") == []
        )

    def test_clean_run_not_flagged(self, tmp_path):
        path = tmp_path / "hist.json"
        record_wall_times(
            "bench",
            {"cold": 1.0, "warm": 0.01},
            extra={"stats": {"service_requests": 2, "service_cache_hits": 1}},
            path=path,
        )
        assert check_fault_counters("bench", path=path) == []

    @pytest.mark.parametrize("counter", FAULT_COUNTERS)
    def test_each_fault_counter_flags(self, tmp_path, counter):
        path = tmp_path / "hist.json"
        record_wall_times(
            "bench",
            {"cold": 1.0},
            extra={"stats": {counter: 1}},
            path=path,
        )
        flags = check_fault_counters("bench", path=path)
        assert len(flags) == 1
        assert counter in flags[0]

    def test_only_latest_record_inspected(self, tmp_path):
        # Faults in history are old news; only the newest run gates.
        path = tmp_path / "hist.json"
        record_wall_times(
            "bench",
            {"cold": 1.0},
            extra={"stats": {"service_worker_crashes": 3}},
            path=path,
        )
        record_wall_times(
            "bench",
            {"cold": 1.0},
            extra={"stats": {"service_requests": 1}},
            path=path,
        )
        assert check_fault_counters("bench", path=path) == []

    def test_record_without_stats_is_silent(self, tmp_path):
        path = tmp_path / "hist.json"
        record_wall_times("bench", {"cold": 1.0}, path=path)
        assert check_fault_counters("bench", path=path) == []

    def test_sweep_includes_fault_flags(self, tmp_path):
        path = tmp_path / "BENCH_server.json"
        record_wall_times(
            "bench",
            {"cold": 1.0},
            extra={"stats": {"service_spill_quarantined": 2}},
            path=path,
        )
        flags = check_all_regressions(tmp_path)
        assert len(flags) == 1
        assert "BENCH_server.json" in flags[0]
        assert "service_spill_quarantined" in flags[0]
