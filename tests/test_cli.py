"""Tests for the mfcsl command-line interface."""

import pytest

from repro.cli import (
    EXIT_BUDGET_EXCEEDED,
    EXIT_CHECKING_ERROR,
    EXIT_FORMULA_ERROR,
    EXIT_MODEL_ERROR,
    EXIT_WORKER_FAILURE,
    MODELS,
    build_parser,
    exit_code_for,
    main,
)
from repro.exceptions import (
    BudgetExceededError,
    HorizonError,
    InvalidRateError,
    ModelError,
    NumericalError,
    ParseError,
    SteadyStateError,
    UnsupportedFormulaError,
    WorkerError,
)


class TestParser:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "virus1" in out
        assert "infected" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCheck:
    def test_satisfied_formula_exit_zero(self, capsys):
        code = main(
            [
                "check",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "EP[<0.3](not_infected U[0,1] infected)",
            ]
        )
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_violated_formula_exit_one(self, capsys):
        code = main(
            [
                "check",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "E[>0.8](infected)",
            ]
        )
        assert code == 1
        assert "NOT SATISFIED" in capsys.readouterr().out

    def test_explain_flag(self, capsys):
        main(
            [
                "check",
                "--explain",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "E[<0.5](infected) & E[>0.5](not_infected)",
            ]
        )
        out = capsys.readouterr().out
        assert "value=" in out
        assert out.count("->") >= 2

    def test_phi1_convention_flag(self, capsys):
        code = main(
            [
                "value",
                "--convention",
                "phi1",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "EP[<0.3](not_infected U[0,1] infected)",
            ]
        )
        assert code == 0
        value = float(capsys.readouterr().out.strip())
        assert value == pytest.approx(0.0339, abs=1e-3)

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "check",
                    "--model",
                    "nope",
                    "--occupancy",
                    "1,0,0",
                    "tt",
                ]
            )

    def test_bad_occupancy_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "check",
                    "--model",
                    "virus1",
                    "--occupancy",
                    "a,b,c",
                    "tt",
                ]
            )

    def test_invalid_occupancy_returns_error_code(self, capsys):
        code = main(
            [
                "check",
                "--model",
                "virus1",
                "--occupancy",
                "0.5,0.1,0.1",
                "tt",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestValue:
    def test_prints_float(self, capsys):
        code = main(
            [
                "value",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "E[>0](infected)",
            ]
        )
        assert code == 0
        assert float(capsys.readouterr().out.strip()) == pytest.approx(0.2)


class TestCsat:
    def test_whole_horizon(self, capsys):
        code = main(
            [
                "csat",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "--theta",
                "5",
                "tt",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[0.000000, 5.000000]" in out

    def test_empty_result(self, capsys):
        code = main(
            [
                "csat",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "--theta",
                "5",
                "ff",
            ]
        )
        assert code == 0
        assert "empty" in capsys.readouterr().out


class TestSimulate:
    ARGS = [
        "simulate",
        "--model",
        "virus1",
        "--occupancy",
        "0.8,0.15,0.05",
        "-N",
        "200",
        "--runs",
        "5",
        "--horizon",
        "0.5",
        "--seed",
        "3",
    ]

    def test_reports_ensemble_summary(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "final occupancy" in out
        assert "RMSE vs mean-field" in out
        assert "events=" in out

    def test_workers_do_not_change_output(self, capsys):
        main(self.ARGS + ["--workers", "1", "--batch-size", "2"])
        one = capsys.readouterr().out
        main(self.ARGS + ["--workers", "3", "--batch-size", "2"])
        three = capsys.readouterr().out
        # Identical up to the echoed workers= line.
        strip = lambda s: [l for l in s.splitlines() if "workers=" not in l]
        assert strip(one) == strip(three)

    def test_serial_method(self, capsys):
        assert main(self.ARGS + ["--method", "serial", "--runs", "2"]) == 0
        assert "method=serial" in capsys.readouterr().out


class TestMc:
    ARGS = [
        "mc",
        "--model",
        "virus1",
        "--occupancy",
        "0.8,0.15,0.05",
        "--samples",
        "300",
        "--seed",
        "2",
    ]
    FORMULA = "not_infected U[0,1] infected"

    def test_path_probability(self, capsys):
        assert main(self.ARGS + ["--state", "s1", self.FORMULA]) == 0
        out = capsys.readouterr().out
        assert "Prob(s1" in out
        assert "95% CI" in out
        assert "paths=300" in out

    def test_expected_probability_without_state(self, capsys):
        assert main(self.ARGS + [self.FORMULA]) == 0
        out = capsys.readouterr().out
        assert "EP(" in out

    def test_workers_do_not_change_estimate(self, capsys):
        main(self.ARGS + ["--state", "s1", "--workers", "1", self.FORMULA])
        one = capsys.readouterr().out.splitlines()[0]
        main(self.ARGS + ["--state", "s1", "--workers", "4", self.FORMULA])
        four = capsys.readouterr().out.splitlines()[0]
        assert one == four

    def test_nested_formula_errors_cleanly(self, capsys):
        code = main(
            self.ARGS
            + ["--state", "s1", "(P[>0.5](tt U[0,1] infected)) U[0,1] infected"]
        )
        # Formula-class failures get their own exit code (3).
        assert code == 3
        assert "error" in capsys.readouterr().err


class TestExitCodes:
    """The exception taxonomy maps to distinct exit codes."""

    def test_mapping_covers_the_taxonomy(self):
        assert exit_code_for(ModelError("x")) == EXIT_MODEL_ERROR
        assert exit_code_for(InvalidRateError("x")) == EXIT_MODEL_ERROR
        assert exit_code_for(ParseError("x", position=3)) == EXIT_FORMULA_ERROR
        assert (
            exit_code_for(UnsupportedFormulaError("x")) == EXIT_FORMULA_ERROR
        )
        assert exit_code_for(NumericalError("x")) == EXIT_CHECKING_ERROR
        assert exit_code_for(HorizonError("x")) == EXIT_CHECKING_ERROR
        assert exit_code_for(SteadyStateError("x")) == EXIT_CHECKING_ERROR

    def test_budget_and_worker_precede_their_checking_parent(self):
        assert (
            exit_code_for(BudgetExceededError("x")) == EXIT_BUDGET_EXCEEDED
        )
        assert exit_code_for(WorkerError("x")) == EXIT_WORKER_FAILURE

    def test_formula_parse_error_exits_3(self, capsys):
        code = main(
            [
                "check",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "EP[<0.3](not_infected U[0,",
            ]
        )
        assert code == EXIT_FORMULA_ERROR
        assert "error" in capsys.readouterr().err

    def test_expired_deadline_exits_5_with_progress(self, capsys):
        code = main(
            [
                "check",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "--deadline",
                "1e-9",
                "EP[<0.3](not_infected U[0,1] infected)",
            ]
        )
        assert code == EXIT_BUDGET_EXCEEDED
        err = capsys.readouterr().err
        assert "budget" in err
        assert "progress:" in err

    def test_generous_deadline_checks_normally(self, capsys):
        code = main(
            [
                "check",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "--deadline",
                "600",
                "EP[<0.3](not_infected U[0,1] infected)",
            ]
        )
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out


class TestModelRegistry:
    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_all_models_construct(self, name):
        model = MODELS[name]()
        assert model.num_states >= 2

    def test_parser_help_builds(self):
        parser = build_parser()
        assert parser.prog == "mfcsl"


class TestDiagnose:
    def test_check_diagnose_prints_trace(self, capsys):
        code = main(
            [
                "check",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "--diagnose",
                "EP[<0.3](not_infected U[0,1] infected)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SATISFIED" in out
        assert "diagnostics:" in out
        assert "solver calls:" in out
        assert "residual maxima:" in out
        assert "cache:" in out
        assert "fallbacks" in out

    def test_csat_diagnose_prints_trace(self, capsys):
        code = main(
            [
                "csat",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "--theta",
                "2",
                "--diagnose",
                "E[<0.5](infected)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "diagnostics:" in out

    def test_without_flag_no_trace(self, capsys):
        main(
            [
                "value",
                "--model",
                "virus1",
                "--occupancy",
                "0.8,0.15,0.05",
                "E[<0.5](infected)",
            ]
        )
        assert "diagnostics:" not in capsys.readouterr().out


class TestBudgetUnification:
    """Regression: every subcommand funnels its execution limits through
    ``Budget.from_options`` — ``simulate`` and ``mc`` used to build a
    deadline-only budget by hand, silently dropping ``--max-solves``,
    ``--max-refinements`` and ``--max-memory-mb``."""

    LIMITS = [
        "--deadline", "5.0",
        "--max-solves", "7",
        "--max-refinements", "2",
        "--max-memory-mb", "128",
    ]

    @pytest.mark.parametrize(
        "head",
        [
            ["check", "--occupancy", "0.8,0.15,0.05"],
            ["value", "--occupancy", "0.8,0.15,0.05"],
            ["csat", "--occupancy", "0.8,0.15,0.05"],
            ["simulate", "--occupancy", "0.8,0.15,0.05"],
            ["mc", "--occupancy", "0.8,0.15,0.05"],
        ],
    )
    def test_every_subcommand_accepts_every_limit_flag(self, head):
        from repro.cli import _budget_options, build_parser
        from repro.resilience import Budget

        argv = head + self.LIMITS
        if head[0] in ("check", "value", "csat", "mc"):
            argv = argv + ["E[<0.5](infected)"]
        args = build_parser().parse_args(argv)
        budget = Budget.from_options(_budget_options(args))
        assert budget is not None
        assert budget.deadline == 5.0
        assert budget.max_solves == 7
        assert budget.max_refinements == 2
        assert budget.max_memory_mb == 128.0

    def test_check_options_carry_all_limits(self):
        from repro.cli import _build_checker, build_parser

        args = build_parser().parse_args(
            ["check", "--occupancy", "0.8,0.15,0.05"]
            + self.LIMITS
            + ["E[<0.5](infected)"]
        )
        options = _build_checker(args).options
        assert options.deadline == 5.0
        assert options.max_solves == 7
        assert options.max_refinements == 2
        assert options.max_memory_mb == 128.0

    def test_mc_honors_the_deadline(self, capsys):
        code = main(
            [
                "mc",
                "--model", "virus1",
                "--occupancy", "0.8,0.15,0.05",
                "--samples", "5000",
                "--deadline", "1e-9",
                "--state", "s1",
                "not_infected U[0,1] infected",
            ]
        )
        assert code == EXIT_BUDGET_EXCEEDED
        assert "error" in capsys.readouterr().err

    def test_no_limit_flags_build_no_budget(self):
        from repro.cli import _budget_options, build_parser
        from repro.resilience import Budget

        args = build_parser().parse_args(
            ["simulate", "--occupancy", "0.8,0.15,0.05"]
        )
        assert Budget.from_options(_budget_options(args)) is None


class TestServeQueryParser:
    """The serve/query subcommands parse without side effects."""

    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.port == 8349
        assert args.max_entries == 32
        assert args.max_concurrent == 4
        assert args.cache_dir is None

    def test_query_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["query", "--occupancy", "0.8,0.15,0.05", "E[<0.5](infected)"]
        )
        assert args.query_command == "check"
        assert args.url == "http://127.0.0.1:8349"
        assert args.formula == "E[<0.5](infected)"

    def test_query_requires_formula_or_stats(self, capsys):
        with pytest.raises(SystemExit):
            main(["query", "--url", "http://127.0.0.1:1"])
