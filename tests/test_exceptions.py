"""Tests for the exception hierarchy."""

import pickle

import pytest

from repro import exceptions as exc


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            exc.ModelError,
            exc.InvalidStateError,
            exc.InvalidRateError,
            exc.InvalidOccupancyError,
            exc.FormulaError,
            exc.ParseError,
            exc.UnsupportedFormulaError,
            exc.CheckingError,
            exc.SteadyStateError,
            exc.NumericalError,
            exc.HorizonError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, exc.ReproError)

    def test_model_error_family(self):
        assert issubclass(exc.InvalidStateError, exc.ModelError)
        assert issubclass(exc.InvalidRateError, exc.ModelError)
        assert issubclass(exc.InvalidOccupancyError, exc.ModelError)

    def test_formula_error_family(self):
        assert issubclass(exc.ParseError, exc.FormulaError)
        assert issubclass(exc.UnsupportedFormulaError, exc.FormulaError)

    def test_checking_error_family(self):
        assert issubclass(exc.SteadyStateError, exc.CheckingError)
        assert issubclass(exc.NumericalError, exc.CheckingError)
        assert issubclass(exc.HorizonError, exc.CheckingError)

    def test_parse_error_carries_position(self):
        error = exc.ParseError("bad token", position=7)
        assert error.position == 7
        assert "bad token" in str(error)

    def test_parse_error_position_optional(self):
        assert exc.ParseError("eof").position is None

    def test_catch_all(self):
        with pytest.raises(exc.ReproError):
            raise exc.HorizonError("out of range")

    def test_resilience_error_family(self):
        assert issubclass(exc.BudgetExceededError, exc.CheckingError)
        assert issubclass(exc.WorkerError, exc.CheckingError)


class TestPickling:
    """Exceptions must survive the process boundary intact.

    Worker processes re-raise failures in the parent via pickle; an
    exception whose custom ``__init__`` breaks unpickling would turn a
    precise error into an opaque ``BrokenProcessPool``.
    """

    @pytest.mark.parametrize(
        "error",
        [
            exc.ReproError("boom"),
            exc.ModelError("bad model"),
            exc.InvalidStateError("no such state"),
            exc.InvalidRateError("negative rate"),
            exc.InvalidOccupancyError("off simplex"),
            exc.FormulaError("bad formula"),
            exc.UnsupportedFormulaError("nested"),
            exc.CheckingError("failed"),
            exc.SteadyStateError("no fixed point"),
            exc.NumericalError("diverged"),
            exc.HorizonError("out of range"),
        ],
    )
    def test_message_round_trips(self, error):
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is type(error)
        assert str(clone) == str(error)

    def test_parse_error_keeps_position(self):
        error = exc.ParseError("bad token", position=7)
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is exc.ParseError
        assert clone.position == 7
        assert "bad token" in str(clone)

    def test_parse_error_without_position(self):
        clone = pickle.loads(pickle.dumps(exc.ParseError("eof")))
        assert clone.position is None

    def test_budget_error_keeps_progress(self):
        error = exc.BudgetExceededError(
            "deadline passed", progress={"batches_completed": 3}
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.progress == {"batches_completed": 3}
        assert "deadline passed" in str(clone)

    def test_budget_error_default_progress(self):
        clone = pickle.loads(pickle.dumps(exc.BudgetExceededError("x")))
        assert clone.progress == {}

    def test_worker_error_keeps_provenance(self):
        error = exc.WorkerError(
            "batch died",
            batch_index=4,
            seed_provenance="SeedSequence(entropy=1, spawn_key=(4,))",
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.batch_index == 4
        assert clone.seed_provenance.startswith("SeedSequence")
