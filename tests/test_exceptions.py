"""Tests for the exception hierarchy."""

import pytest

from repro import exceptions as exc


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            exc.ModelError,
            exc.InvalidStateError,
            exc.InvalidRateError,
            exc.InvalidOccupancyError,
            exc.FormulaError,
            exc.ParseError,
            exc.UnsupportedFormulaError,
            exc.CheckingError,
            exc.SteadyStateError,
            exc.NumericalError,
            exc.HorizonError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, exc.ReproError)

    def test_model_error_family(self):
        assert issubclass(exc.InvalidStateError, exc.ModelError)
        assert issubclass(exc.InvalidRateError, exc.ModelError)
        assert issubclass(exc.InvalidOccupancyError, exc.ModelError)

    def test_formula_error_family(self):
        assert issubclass(exc.ParseError, exc.FormulaError)
        assert issubclass(exc.UnsupportedFormulaError, exc.FormulaError)

    def test_checking_error_family(self):
        assert issubclass(exc.SteadyStateError, exc.CheckingError)
        assert issubclass(exc.NumericalError, exc.CheckingError)
        assert issubclass(exc.HorizonError, exc.CheckingError)

    def test_parse_error_carries_position(self):
        error = exc.ParseError("bad token", position=7)
        assert error.position == 7
        assert "bad token" in str(error)

    def test_parse_error_position_optional(self):
        assert exc.ParseError("eof").position is None

    def test_catch_all(self):
        with pytest.raises(exc.ReproError):
            raise exc.HorizonError("out of range")
