"""Tests for model-file serialization (repro.io)."""

import json

import numpy as np
import pytest

from repro.exceptions import (
    InvalidOccupancyError,
    InvalidRateError,
    InvalidStateError,
    ModelError,
)
from repro.io import (
    FORMAT_NAME,
    FORMAT_VERSION,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.models.virus import SETTING_1, virus_model, virus_model_declarative


@pytest.fixture
def declarative():
    return virus_model_declarative(SETTING_1)


class TestRoundTrip:
    def test_dict_round_trip(self, declarative):
        doc = model_to_dict(declarative)
        rebuilt = model_from_dict(doc)
        assert rebuilt.local.states == declarative.local.states
        m = np.array([0.8, 0.15, 0.05])
        assert np.allclose(
            rebuilt.local.generator(m), declarative.local.generator(m)
        )

    def test_file_round_trip(self, declarative, tmp_path):
        path = tmp_path / "virus.json"
        save_model(declarative, path)
        rebuilt = load_model(path)
        m0 = np.array([0.8, 0.15, 0.05])
        a = declarative.trajectory(m0, horizon=5.0)(5.0)
        b = rebuilt.trajectory(m0, horizon=5.0)(5.0)
        assert np.allclose(a, b, atol=1e-12)

    def test_labels_survive(self, declarative, tmp_path):
        path = tmp_path / "virus.json"
        save_model(declarative, path)
        rebuilt = load_model(path)
        assert rebuilt.local.states_with_label("infected") == frozenset({1, 2})

    def test_dynamics_match_closure_model(self, declarative):
        """The declarative model is exactly the paper's virus model."""
        closure = virus_model(SETTING_1)
        m0 = np.array([0.8, 0.15, 0.05])
        a = closure.trajectory(m0, horizon=10.0)(10.0)
        b = declarative.trajectory(m0, horizon=10.0)(10.0)
        assert np.allclose(a, b, atol=1e-10)

    def test_document_shape(self, declarative):
        doc = model_to_dict(declarative)
        assert doc["format"] == FORMAT_NAME
        assert doc["version"] == FORMAT_VERSION
        assert len(doc["states"]) == 3
        assert len(doc["transitions"]) == 5
        # JSON-serializable end to end.
        json.dumps(doc)


class TestConstantShorthand:
    def test_plain_number_rates(self):
        doc = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "states": [{"name": "a"}, {"name": "b", "labels": ["up"]}],
            "transitions": [
                {"from": "a", "to": "b", "rate": 1.5},
                {"from": "b", "to": "a", "rate": 0.5},
            ],
        }
        model = model_from_dict(doc)
        q = model.local.generator(np.array([0.5, 0.5]))
        assert q[0, 1] == 1.5
        assert model.local.is_homogeneous


class TestErrors:
    def test_opaque_callable_not_serializable(self):
        with pytest.raises(ModelError):
            model_to_dict(virus_model(SETTING_1))

    def test_wrong_format_rejected(self):
        with pytest.raises(ModelError):
            model_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(ModelError):
            model_from_dict({"format": FORMAT_NAME, "version": 99, "states": [{"name": "a"}]})

    def test_missing_states_rejected(self):
        with pytest.raises(ModelError):
            model_from_dict({"format": FORMAT_NAME, "version": 1, "states": []})

    def test_malformed_transition_rejected(self):
        doc = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "states": [{"name": "a"}, {"name": "b"}],
            "transitions": [{"from": "a"}],
        }
        with pytest.raises(ModelError):
            model_from_dict(doc)

    def test_duplicate_transition_rejected(self):
        doc = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "states": [{"name": "a"}, {"name": "b"}],
            "transitions": [
                {"from": "a", "to": "b", "rate": 1.0},
                {"from": "a", "to": "b", "rate": 2.0},
            ],
        }
        with pytest.raises(ModelError):
            model_from_dict(doc)

    def test_bad_rate_type_rejected(self):
        doc = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "states": [{"name": "a"}, {"name": "b"}],
            "transitions": [{"from": "a", "to": "b", "rate": "fast"}],
        }
        with pytest.raises(ModelError):
            model_from_dict(doc)

    def _doc(self, **overrides):
        doc = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "states": [{"name": "a"}, {"name": "b"}],
            "transitions": [{"from": "a", "to": "b", "rate": 1.0}],
        }
        doc.update(overrides)
        return doc

    def test_unknown_target_state_named_in_error(self):
        doc = self._doc(
            transitions=[{"from": "a", "to": "ghost", "rate": 1.0}]
        )
        with pytest.raises(InvalidStateError, match="'to'.*ghost"):
            model_from_dict(doc)

    def test_unknown_source_state_named_in_error(self):
        doc = self._doc(
            transitions=[{"from": "ghost", "to": "b", "rate": 1.0}]
        )
        with pytest.raises(InvalidStateError, match="'from'.*ghost"):
            model_from_dict(doc)

    def test_negative_rate_rejected(self):
        doc = self._doc(
            transitions=[{"from": "a", "to": "b", "rate": -0.5}]
        )
        with pytest.raises(InvalidRateError, match="'rate'.*negative"):
            model_from_dict(doc)

    def test_non_finite_rate_rejected(self):
        doc = self._doc(
            transitions=[{"from": "a", "to": "b", "rate": float("nan")}]
        )
        with pytest.raises(InvalidRateError, match="'rate'.*not finite"):
            model_from_dict(doc)

    def test_negative_constant_expression_rejected(self):
        doc = self._doc(
            transitions=[
                {
                    "from": "a",
                    "to": "b",
                    "rate": {"op": "const", "value": -1.0},
                }
            ]
        )
        with pytest.raises(InvalidRateError, match="negative"):
            model_from_dict(doc)

    def test_boolean_rate_rejected(self):
        doc = self._doc(
            transitions=[{"from": "a", "to": "b", "rate": True}]
        )
        with pytest.raises(InvalidRateError):
            model_from_dict(doc)

    def test_off_simplex_initial_rejected(self):
        doc = self._doc(initial=[0.9, 0.3])
        with pytest.raises(InvalidOccupancyError, match="'initial'.*sum"):
            model_from_dict(doc)

    def test_negative_initial_entry_rejected(self):
        doc = self._doc(initial=[1.2, -0.2])
        with pytest.raises(InvalidOccupancyError, match="'initial'.*negative"):
            model_from_dict(doc)

    def test_wrong_length_initial_rejected(self):
        doc = self._doc(initial=[1.0])
        with pytest.raises(InvalidOccupancyError, match="'initial'"):
            model_from_dict(doc)

    def test_valid_initial_accepted(self):
        doc = self._doc(initial=[0.25, 0.75])
        model = model_from_dict(doc)
        assert model.num_states == 2

    def test_malformed_fixture_file_names_field(self, tmp_path):
        doc = self._doc(
            transitions=[{"from": "a", "to": "nowhere", "rate": 1.0}]
        )
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(InvalidStateError, match="'to'"):
            load_model(path)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ModelError):
            load_model(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelError):
            load_model(tmp_path / "nope.json")


class TestCliIntegration:
    def test_check_with_model_file(self, declarative, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "virus.json"
        save_model(declarative, path)
        code = main(
            [
                "check",
                "--model-file",
                str(path),
                "--occupancy",
                "0.8,0.15,0.05",
                "EP[<0.3](not_infected U[0,1] infected)",
            ]
        )
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out
