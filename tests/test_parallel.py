"""Tests for the process-parallel batch executor (repro.parallel)."""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.exceptions import BudgetExceededError, ModelError, WorkerError
from repro.instrumentation import EvalStats
from repro.parallel import (
    batch_bounds,
    fork_available,
    run_batches,
    seed_provenance,
    spawn_seeds,
)
from repro.resilience import Budget

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)


class TestBatchBounds:
    def test_covers_range_contiguously(self):
        bounds = batch_bounds(10, 3)
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_exact_multiple(self):
        assert batch_bounds(8, 4) == [(0, 4), (4, 8)]

    def test_single_batch(self):
        assert batch_bounds(5, 100) == [(0, 5)]

    def test_empty(self):
        assert batch_bounds(0, 4) == []

    def test_independent_of_anything_but_total_and_size(self):
        # The reproducibility contract: the decomposition is a pure
        # function of (total, batch_size).
        assert batch_bounds(1000, 64) == batch_bounds(1000, 64)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ModelError):
            batch_bounds(-1, 4)
        with pytest.raises(ModelError):
            batch_bounds(10, 0)


class TestSpawnSeeds:
    def test_deterministic(self):
        a = spawn_seeds(42, 5)
        b = spawn_seeds(42, 5)
        assert [s.entropy for s in a] == [s.entropy for s in b]
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]

    def test_children_differ(self):
        seeds = spawn_seeds(0, 4)
        draws = [np.random.default_rng(s).random() for s in seeds]
        assert len(set(draws)) == 4

    def test_accepts_seed_sequence(self):
        root = np.random.SeedSequence(7)
        children = spawn_seeds(root, 3)
        assert len(children) == 3

    def test_differs_from_legacy_master_scheme(self):
        # Regression for the old ``master.integers(0, 2**63)`` derivation:
        # spawned children are not the integer-seeded generators.
        master = np.random.default_rng(3)
        legacy = np.random.default_rng(int(master.integers(0, 2**63)))
        spawned = np.random.default_rng(spawn_seeds(3, 1)[0])
        assert legacy.random() != spawned.random()


class TestRunBatches:
    def test_preserves_order(self):
        results = run_batches(lambda i: i * i, [(i,) for i in range(7)])
        assert results == [0, 1, 4, 9, 16, 25, 36]

    def test_workers_do_not_change_results(self):
        args = [(lo, hi) for lo, hi in batch_bounds(20, 3)]

        def work(lo, hi):
            rng = np.random.default_rng(lo)
            return float(rng.random(hi - lo).sum())

        serial = run_batches(work, args, workers=1)
        parallel = run_batches(work, args, workers=4)
        assert serial == parallel

    def test_closure_state_usable_in_workers(self):
        # Workers inherit closed-over state by fork; no pickling of `table`.
        table = {"offset": 100}

        def work(i):
            return i + table["offset"]

        results = run_batches(work, [(i,) for i in range(6)], workers=3)
        assert results == [100, 101, 102, 103, 104, 105]

    def test_single_tuple_runs_in_process(self):
        import os

        pid = os.getpid()
        results = run_batches(lambda: os.getpid(), [()], workers=8)
        assert results == [pid]

    def test_nested_call_degrades_gracefully(self):
        def inner(i):
            return i + 1

        def outer(i):
            return sum(run_batches(inner, [(j,) for j in range(i)], workers=4))

        results = run_batches(outer, [(i,) for i in range(4)], workers=2)
        assert results == [0, 1, 3, 6]

    def test_rejects_bad_workers(self):
        with pytest.raises(ModelError):
            run_batches(lambda: None, [()], workers=0)

    def test_fork_available_reports_platform(self):
        assert isinstance(fork_available(), bool)


class TestSeedProvenance:
    def test_describes_the_seed_sequence(self):
        seed = spawn_seeds(42, 3)[1]
        text = seed_provenance((0, 5, seed))
        assert "entropy=42" in text
        assert "spawn_key=(1,)" in text

    def test_none_without_a_seed(self):
        assert seed_provenance((0, 5)) is None


@needs_fork
class TestWorkerFaults:
    """Dead, hung and failing workers must never corrupt a run."""

    @staticmethod
    def _seeded_work(index, seed):
        rng = np.random.default_rng(seed)
        return float(rng.random(100).sum())

    def _args(self, n=6, entropy=11):
        return [(i, s) for i, s in enumerate(spawn_seeds(entropy, n))]

    def test_killed_worker_recovers_bitwise_identically(self, tmp_path):
        flag = tmp_path / "already-killed"
        main_pid = os.getpid()

        def work(index, seed):
            if index == 1 and os.getpid() != main_pid and not flag.exists():
                # First worker to pick up batch 1 dies mid-run, exactly
                # once (the flag file is visible to later forks).
                flag.write_text("x")
                os.kill(os.getpid(), signal.SIGKILL)
            return self._seeded_work(index, seed)

        stats = EvalStats()
        args = self._args()
        survived = run_batches(
            work, args, workers=3, stats=stats, sleep=lambda s: None
        )
        assert flag.exists(), "the fault was never injected"
        assert stats.worker_retries > 0
        serial = run_batches(self._seeded_work, args, workers=1)
        assert survived == serial

    def test_retries_exhausted_finishes_in_process(self, tmp_path):
        main_pid = os.getpid()

        def work(index, seed):
            if index == 1 and os.getpid() != main_pid:
                # Every pool round loses this batch's worker; only the
                # final in-process pass can complete it.
                os.kill(os.getpid(), signal.SIGKILL)
            return self._seeded_work(index, seed)

        args = self._args()
        survived = run_batches(
            work, args, workers=2, max_retries=1, sleep=lambda s: None
        )
        assert survived == run_batches(self._seeded_work, args, workers=1)

    def test_hung_worker_bounded_by_deadline(self):
        def work(index, seed):
            time.sleep(30.0)
            return index

        budget = Budget(deadline=0.4)
        start = time.monotonic()
        with pytest.raises(BudgetExceededError) as excinfo:
            run_batches(work, self._args(4), workers=2, budget=budget)
        assert time.monotonic() - start < 10.0, "worker reaping stalled"
        assert "batches" in str(excinfo.value)
        assert excinfo.value.progress["batches_total"] == 4

    def test_deterministic_failure_wrapped_as_worker_error(self):
        def work(index, seed):
            if index == 2:
                raise ValueError("poisoned batch")
            return self._seeded_work(index, seed)

        with pytest.raises(WorkerError) as excinfo:
            run_batches(work, self._args(), workers=3)
        error = excinfo.value
        assert error.batch_index == 2
        assert "ValueError" in str(error)
        assert "poisoned batch" in str(error)
        assert "SeedSequence" in error.seed_provenance
        assert isinstance(error.__cause__, ValueError)

    def test_deterministic_failure_not_retried(self):
        stats = EvalStats()

        def work(index, seed):
            if index == 0:
                raise RuntimeError("always fails")
            return index

        with pytest.raises(WorkerError):
            run_batches(
                work, self._args(4), workers=2, stats=stats,
                sleep=lambda s: None,
            )
        assert stats.worker_retries == 0

    def test_budget_error_from_worker_propagates_unwrapped(self):
        def work(index, seed):
            raise BudgetExceededError(
                "inner deadline", progress={"paths": 7}
            )

        with pytest.raises(BudgetExceededError) as excinfo:
            run_batches(work, self._args(4), workers=2)
        assert not isinstance(excinfo.value, WorkerError)
        assert excinfo.value.progress == {"paths": 7}


@needs_fork
class TestPayloadSlot:
    def test_concurrent_threads_do_not_corrupt_the_slot(self):
        # Regression: two threads dispatching at once used to race on the
        # module-level _PAYLOAD slot; now the loser degrades in-process.
        barrier = threading.Barrier(2, timeout=30.0)
        results = {}
        errors = []

        def work(i, offset):
            time.sleep(0.05)
            return i + offset

        def drive(name, offset):
            args = [(i, offset) for i in range(4)]
            try:
                barrier.wait()
                results[name] = run_batches(work, args, workers=2)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((name, exc))

        threads = [
            threading.Thread(target=drive, args=("a", 10)),
            threading.Thread(target=drive, args=("b", 100)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors
        assert results["a"] == [10, 11, 12, 13]
        assert results["b"] == [100, 101, 102, 103]
