"""Tests for the process-parallel batch executor (repro.parallel)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.parallel import (
    batch_bounds,
    fork_available,
    run_batches,
    spawn_seeds,
)


class TestBatchBounds:
    def test_covers_range_contiguously(self):
        bounds = batch_bounds(10, 3)
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_exact_multiple(self):
        assert batch_bounds(8, 4) == [(0, 4), (4, 8)]

    def test_single_batch(self):
        assert batch_bounds(5, 100) == [(0, 5)]

    def test_empty(self):
        assert batch_bounds(0, 4) == []

    def test_independent_of_anything_but_total_and_size(self):
        # The reproducibility contract: the decomposition is a pure
        # function of (total, batch_size).
        assert batch_bounds(1000, 64) == batch_bounds(1000, 64)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ModelError):
            batch_bounds(-1, 4)
        with pytest.raises(ModelError):
            batch_bounds(10, 0)


class TestSpawnSeeds:
    def test_deterministic(self):
        a = spawn_seeds(42, 5)
        b = spawn_seeds(42, 5)
        assert [s.entropy for s in a] == [s.entropy for s in b]
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]

    def test_children_differ(self):
        seeds = spawn_seeds(0, 4)
        draws = [np.random.default_rng(s).random() for s in seeds]
        assert len(set(draws)) == 4

    def test_accepts_seed_sequence(self):
        root = np.random.SeedSequence(7)
        children = spawn_seeds(root, 3)
        assert len(children) == 3

    def test_differs_from_legacy_master_scheme(self):
        # Regression for the old ``master.integers(0, 2**63)`` derivation:
        # spawned children are not the integer-seeded generators.
        master = np.random.default_rng(3)
        legacy = np.random.default_rng(int(master.integers(0, 2**63)))
        spawned = np.random.default_rng(spawn_seeds(3, 1)[0])
        assert legacy.random() != spawned.random()


class TestRunBatches:
    def test_preserves_order(self):
        results = run_batches(lambda i: i * i, [(i,) for i in range(7)])
        assert results == [0, 1, 4, 9, 16, 25, 36]

    def test_workers_do_not_change_results(self):
        args = [(lo, hi) for lo, hi in batch_bounds(20, 3)]

        def work(lo, hi):
            rng = np.random.default_rng(lo)
            return float(rng.random(hi - lo).sum())

        serial = run_batches(work, args, workers=1)
        parallel = run_batches(work, args, workers=4)
        assert serial == parallel

    def test_closure_state_usable_in_workers(self):
        # Workers inherit closed-over state by fork; no pickling of `table`.
        table = {"offset": 100}

        def work(i):
            return i + table["offset"]

        results = run_batches(work, [(i,) for i in range(6)], workers=3)
        assert results == [100, 101, 102, 103, 104, 105]

    def test_single_tuple_runs_in_process(self):
        import os

        pid = os.getpid()
        results = run_batches(lambda: os.getpid(), [()], workers=8)
        assert results == [pid]

    def test_nested_call_degrades_gracefully(self):
        def inner(i):
            return i + 1

        def outer(i):
            return sum(run_batches(inner, [(j,) for j in range(i)], workers=4))

        results = run_batches(outer, [(i,) for i in range(4)], workers=2)
        assert results == [0, 1, 3, 6]

    def test_rejects_bad_workers(self):
        with pytest.raises(ModelError):
            run_batches(lambda: None, [()], workers=0)

    def test_fork_available_reports_platform(self):
        assert isinstance(fork_available(), bool)
