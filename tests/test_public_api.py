"""Smoke tests for the public API surface and the shipped examples."""

import importlib
import pathlib

import pytest

import repro

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

PUBLIC_MODULES = [
    "repro",
    "repro.ctmc",
    "repro.meanfield",
    "repro.meanfield.expressions",
    "repro.meanfield.lumping",
    "repro.logic",
    "repro.checking",
    "repro.checking.statistical",
    "repro.checking.homogeneous",
    "repro.checking.discrete",
    "repro.models",
    "repro.io",
    "repro.cli",
    "repro.exceptions",
]


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_module_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize(
        "module_name",
        ["repro", "repro.ctmc", "repro.meanfield", "repro.logic", "repro.checking", "repro.models"],
    )
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_docstrings_everywhere(self):
        """Every public module ships a module docstring."""
        for name in PUBLIC_MODULES:
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} lacks a module docstring"

    def test_quickstart_docstring_example(self):
        """The doctest shown in the package docstring really works."""
        import numpy as np

        from repro import MFModelChecker
        from repro.models.virus import SETTING_1, virus_model

        checker = MFModelChecker(virus_model(SETTING_1))
        assert checker.check(
            "EP[<0.3](not_infected U[0,1] infected)",
            np.array([0.8, 0.15, 0.05]),
        )


class TestExamplesShip:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        expected = {
            "quickstart.py",
            "virus_outbreak_analysis.py",
            "nested_properties.py",
            "finite_population_convergence.py",
            "botnet_defense.py",
            "load_balancing_sla.py",
            "discrete_gossip.py",
        }
        assert expected <= names

    @pytest.mark.parametrize(
        "script",
        sorted(p.name for p in EXAMPLES_DIR.glob("*.py")),
    )
    def test_examples_compile(self, script):
        source = (EXAMPLES_DIR / script).read_text()
        compile(source, script, "exec")
