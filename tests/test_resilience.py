"""Tests for execution budgets and result-quality provenance."""

import pytest

from repro.checking.options import CheckOptions
from repro.diagnostics import DiagnosticTrace, DowngradeRecord
from repro.exceptions import BudgetExceededError, ModelError
from repro.instrumentation import EvalStats
from repro.resilience import (
    DEFAULT_PRESSURE_FRACTION,
    RHS_CHECK_INTERVAL,
    Budget,
    ResultQuality,
    worst_quality,
)


class FakeClock:
    """Deterministic monotonic clock for budget tests."""

    def __init__(self, start=0.0):
        self.t = float(start)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += float(dt)


class TestBudgetTime:
    def test_elapsed_follows_the_clock(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock)
        assert budget.elapsed() == 0.0
        clock.advance(2.5)
        assert budget.elapsed() == 2.5

    def test_remaining_counts_down(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock)
        clock.advance(4.0)
        assert budget.remaining() == pytest.approx(6.0)

    def test_remaining_none_without_deadline(self):
        assert Budget(clock=FakeClock()).remaining() is None

    def test_expired_flips_at_the_deadline(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        assert not budget.expired()
        clock.advance(0.999)
        assert not budget.expired()
        clock.advance(0.002)
        assert budget.expired()

    def test_never_expires_without_deadline(self):
        clock = FakeClock()
        budget = Budget(clock=clock)
        clock.advance(1e9)
        assert not budget.expired()

    def test_under_pressure_near_the_deadline(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock)
        assert not budget.under_pressure()
        # Default pressure fraction: under pressure once < 15% remains.
        clock.advance(10.0 * (1.0 - DEFAULT_PRESSURE_FRACTION) + 0.01)
        assert budget.under_pressure()

    def test_pressure_fraction_is_configurable(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock, pressure_fraction=0.5)
        clock.advance(4.0)
        assert not budget.under_pressure()
        clock.advance(1.5)
        assert budget.under_pressure()

    def test_no_pressure_without_deadline(self):
        assert not Budget(clock=FakeClock()).under_pressure()


class TestBudgetEnforcement:
    def test_checkpoint_passes_before_deadline(self):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock)
        budget.checkpoint("warm")  # no raise

    def test_checkpoint_raises_after_deadline(self):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock)
        clock.advance(5.1)
        with pytest.raises(BudgetExceededError, match="deadline 5s passed"):
            budget.checkpoint("late")

    def test_checkpoint_error_names_the_label(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(BudgetExceededError, match="refinement sweep 3"):
            budget.checkpoint("refinement sweep 3")

    def test_charge_solve_counts_and_caps(self):
        budget = Budget(max_solves=3, clock=FakeClock())
        for _ in range(3):
            budget.charge_solve()
        assert budget.solves == 3
        with pytest.raises(BudgetExceededError, match="cap 3 reached"):
            budget.charge_solve()

    def test_charge_solve_unlimited_without_cap(self):
        budget = Budget(clock=FakeClock())
        for _ in range(100):
            budget.charge_solve()
        assert budget.solves == 100

    def test_check_memory_guards_large_allocations(self):
        budget = Budget(max_memory_mb=1.0, clock=FakeClock())
        budget.check_memory(500_000, "cell cache")  # 0.5 MB: fine
        with pytest.raises(BudgetExceededError, match="memory guard 1 MB"):
            budget.check_memory(2_000_000, "cell cache")

    def test_check_memory_noop_without_guard(self):
        Budget(clock=FakeClock()).check_memory(1e12, "huge")

    def test_exceeded_carries_progress_snapshot(self):
        clock = FakeClock()
        budget = Budget(deadline=2.0, max_solves=9, clock=clock)
        budget.advance("batches_completed")
        budget.advance("batches_completed")
        budget.charge_solve()
        clock.advance(1.0)
        error = budget.exceeded("somewhere", "why")
        assert error.progress["batches_completed"] == 2
        assert error.progress["solves"] == 1
        assert error.progress["elapsed_seconds"] == pytest.approx(1.0)
        assert error.progress["deadline_seconds"] == 2.0
        assert error.progress["max_solves"] == 9
        assert "somewhere" in str(error)

    def test_advance_accumulates_amounts(self):
        budget = Budget(clock=FakeClock())
        budget.advance("paths", 32)
        budget.advance("paths", 32)
        assert budget.progress["paths"] == 64

    def test_rhs_check_interval_is_sane(self):
        assert RHS_CHECK_INTERVAL > 0


class TestBudgetValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline": 0.0},
            {"deadline": -1.0},
            {"max_solves": 0},
            {"max_refinements": -1},
            {"max_memory_mb": 0.0},
            {"pressure_fraction": 0.0},
            {"pressure_fraction": 1.0},
        ],
    )
    def test_rejects_bad_limits(self, kwargs):
        with pytest.raises(ModelError):
            Budget(**kwargs)


class TestFromOptions:
    def test_none_when_no_limit_set(self):
        assert Budget.from_options(CheckOptions()) is None

    def test_built_when_any_limit_set(self):
        budget = Budget.from_options(CheckOptions(deadline=30.0))
        assert budget is not None
        assert budget.deadline == 30.0

    def test_carries_every_limit(self):
        options = CheckOptions(
            deadline=30.0,
            max_solves=100,
            max_refinements=4,
            max_memory_mb=64.0,
        )
        budget = Budget.from_options(options)
        assert budget.deadline == 30.0
        assert budget.max_solves == 100
        assert budget.max_refinements == 4
        assert budget.max_memory_mb == 64.0

    def test_options_validate_limits(self):
        with pytest.raises(ModelError):
            CheckOptions(deadline=-1.0)
        with pytest.raises(ModelError):
            CheckOptions(max_solves=0)
        with pytest.raises(ModelError):
            CheckOptions(max_refinements=-2)
        with pytest.raises(ModelError):
            CheckOptions(max_memory_mb=-5.0)


class TestResultQuality:
    def test_ordering_worst_last(self):
        assert ResultQuality.EXACT < ResultQuality.DEGRADED
        assert ResultQuality.DEGRADED < ResultQuality.STATISTICAL

    def test_describe(self):
        assert ResultQuality.EXACT.describe() == "exact"
        assert ResultQuality.DEGRADED.describe() == "degraded"
        assert ResultQuality.STATISTICAL.describe() == "statistical"

    def test_worst_quality(self):
        assert worst_quality() is ResultQuality.EXACT
        assert (
            worst_quality(ResultQuality.EXACT, ResultQuality.DEGRADED)
            is ResultQuality.DEGRADED
        )
        assert (
            worst_quality(
                ResultQuality.STATISTICAL,
                ResultQuality.EXACT,
                ResultQuality.DEGRADED,
            )
            is ResultQuality.STATISTICAL
        )


class TestTraceDowngrades:
    def test_trace_starts_exact(self):
        trace = DiagnosticTrace()
        assert trace.quality is ResultQuality.EXACT
        assert trace.uncertainty == 0.0

    def test_downgrade_records_and_degrades_quality(self):
        trace = DiagnosticTrace()
        record = trace.downgrade(
            "propagator", "ode", ResultQuality.EXACT, "residual too large"
        )
        assert isinstance(record, DowngradeRecord)
        assert trace.quality is ResultQuality.EXACT  # ode rung stays exact
        trace.downgrade(
            "ode",
            "uniformization",
            ResultQuality.DEGRADED,
            "solver diverged",
            uncertainty=1e-4,
        )
        assert trace.quality is ResultQuality.DEGRADED
        assert trace.uncertainty == pytest.approx(1e-4)

    def test_uncertainty_is_the_worst_across_downgrades(self):
        trace = DiagnosticTrace()
        trace.downgrade(
            "ode", "uniformization", ResultQuality.DEGRADED, "a",
            uncertainty=1e-5,
        )
        trace.downgrade(
            "uniformization", "mc", ResultQuality.STATISTICAL, "b",
            uncertainty=3e-2,
        )
        assert trace.quality is ResultQuality.STATISTICAL
        assert trace.uncertainty == pytest.approx(3e-2)

    def test_downgrades_count_into_stats(self):
        stats = EvalStats()
        trace = DiagnosticTrace(stats=stats)
        trace.downgrade("ode", "mc", ResultQuality.STATISTICAL, "x")
        assert stats.ladder_downgrades == 1

    def test_describe_mentions_the_rungs(self):
        record = DowngradeRecord(
            from_rung="ode",
            to_rung="mc",
            quality=ResultQuality.STATISTICAL,
            reason="all solvers failed",
            uncertainty=0.01,
        )
        text = record.describe()
        assert "ode -> mc" in text
        assert "statistical" in text
        assert "uncertainty" in text

    def test_summary_reports_quality_when_degraded(self):
        trace = DiagnosticTrace()
        trace.downgrade(
            "ode", "uniformization", ResultQuality.DEGRADED, "why",
            uncertainty=2e-3,
        )
        text = trace.format()
        assert "result quality: degraded" in text
        assert "downgrade:" in text


class TestSnapshotNamespacing:
    """Regression: free-form progress keys must never clobber the
    snapshot's reserved fields (a layer calling ``advance("solves", n)``
    used to overwrite the budget's true solve count in the report)."""

    def test_colliding_progress_key_is_namespaced(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, max_solves=50, clock=clock)
        for _ in range(3):
            budget.charge_solve()
        clock.advance(2.0)
        budget.advance("solves", 999)
        budget.advance("elapsed_seconds", 123.0)
        snap = budget.snapshot()
        # Reserved fields report the budget's own truth...
        assert snap["solves"] == 3
        assert snap["elapsed_seconds"] == pytest.approx(2.0)
        assert snap["deadline_seconds"] == 10.0
        assert snap["max_solves"] == 50
        # ...and the colliding counters survive under a namespace.
        assert snap["progress.solves"] == 999
        assert snap["progress.elapsed_seconds"] == 123.0

    def test_ordinary_progress_keys_stay_unprefixed(self):
        budget = Budget(clock=FakeClock())
        budget.advance("batches_completed", 7)
        snap = budget.snapshot()
        assert snap["batches_completed"] == 7
        assert "progress.batches_completed" not in snap


class TestBudgetRestart:
    """Per-request re-arm for long-running processes (the checking
    server keeps one budget per cache entry and restarts it in place;
    the engines captured the object at construction, so the deadline
    must re-anchor without replacing it)."""

    def test_restart_reanchors_the_deadline(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        clock.advance(5.0)
        assert budget.expired()
        budget.restart()
        assert not budget.expired()
        assert budget.elapsed() == 0.0
        clock.advance(0.5)
        assert budget.remaining() == pytest.approx(0.5)

    def test_restart_resets_counters_and_progress(self):
        budget = Budget(max_solves=10, clock=FakeClock())
        budget.charge_solve()
        budget.advance("batches_completed", 4)
        budget.restart()
        assert budget.solves == 0
        assert budget.progress == {}

    def test_restart_replaces_passed_limits_only(self):
        budget = Budget(
            deadline=1.0, max_solves=5, max_refinements=3,
            max_memory_mb=64.0, clock=FakeClock(),
        )
        budget.restart(deadline=2.0, max_solves=None)
        assert budget.deadline == 2.0
        assert budget.max_solves is None
        # Omitted limits are kept.
        assert budget.max_refinements == 3
        assert budget.max_memory_mb == 64.0

    def test_restart_validates_like_the_constructor(self):
        budget = Budget(clock=FakeClock())
        with pytest.raises(ModelError, match="deadline must be positive"):
            budget.restart(deadline=-1.0)
        with pytest.raises(ModelError, match="max_solves must be positive"):
            budget.restart(max_solves=0)
        with pytest.raises(ModelError, match="max_refinements"):
            budget.restart(max_refinements=-1)
        with pytest.raises(ModelError, match="max_memory_mb"):
            budget.restart(max_memory_mb=0.0)

    def test_restarted_budget_enforces_the_new_deadline(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock)
        budget.restart(deadline=1.0)
        clock.advance(1.5)
        with pytest.raises(BudgetExceededError):
            budget.checkpoint("after restart")

    def test_same_object_is_rearmed(self):
        """Engines capture the budget; restart must mutate in place."""
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        captured = budget  # stand-in for an engine's reference
        clock.advance(2.0)
        assert captured.expired()
        budget.restart(deadline=3.0)
        assert not captured.expired()
        assert captured.deadline == 3.0
